package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"discoverxfd/internal/trace"
)

// handleJobStatus is GET /v1/jobs/{id}: the job's status document.
func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	j := s.jobs.get(r.PathValue("id"))
	if j == nil {
		writeJSONStatus(w, http.StatusNotFound, map[string]string{"error": "no such job"})
		return
	}
	writeJSONStatus(w, http.StatusOK, j.view())
}

// handleJobResult is GET /v1/jobs/{id}/result: the rendered discovery
// result once the job is done — served verbatim from the bytes the
// run rendered, so polling clients see exactly what the sync endpoint
// would have sent. An unfinished job answers 202 with the status
// document; a failed one replays its error with the status the sync
// path would have used.
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	j := s.jobs.get(r.PathValue("id"))
	if j == nil {
		writeJSONStatus(w, http.StatusNotFound, map[string]string{"error": "no such job"})
		return
	}
	j.mu.Lock()
	state, status, result, errMsg, truncated := j.state, j.status, j.result, j.errMsg, j.truncate
	j.mu.Unlock()
	switch state {
	case stateDone:
		w.Header().Set("Content-Type", "application/json")
		if truncated {
			w.Header().Set("X-Truncated", "true")
		}
		w.WriteHeader(status)
		w.Write(result)
	case stateFailed, stateCancelled:
		writeJSONStatus(w, status, map[string]string{"error": errMsg, "state": state})
	default:
		writeJSONStatus(w, http.StatusAccepted, j.view())
	}
}

// handleJobCancel is DELETE /v1/jobs/{id}: abort the job's run. The
// job transitions to cancelled when its goroutine observes the
// cancellation (a job that already finished keeps its result).
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j := s.jobs.get(r.PathValue("id"))
	if j == nil {
		writeJSONStatus(w, http.StatusNotFound, map[string]string{"error": "no such job"})
		return
	}
	j.cancel()
	writeJSONStatus(w, http.StatusAccepted, j.view())
}

// handleJobEvents is GET /v1/jobs/{id}/events: the job's trace-event
// progress feed. With Accept: text/event-stream the events stream as
// SSE until the job finishes; otherwise one page is returned as JSON
// with the cursor to poll from next (?cursor=N). Either way the
// events come from the job's bounded Feed — a reader that falls too
// far behind is told how much it missed (the SSE stream emits a
// `dropped` event, the poll page sets "dropped") and the durable
// trace file remains the complete record.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j := s.jobs.get(r.PathValue("id"))
	if j == nil {
		writeJSONStatus(w, http.StatusNotFound, map[string]string{"error": "no such job"})
		return
	}
	var cursor uint64
	if v := r.URL.Query().Get("cursor"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			writeJSONStatus(w, http.StatusBadRequest, map[string]string{"error": "bad cursor: " + err.Error()})
			return
		}
		cursor = n
	}
	if strings.Contains(r.Header.Get("Accept"), "text/event-stream") {
		s.streamEvents(w, r, j, cursor)
		return
	}
	events, next, dropped, closed := j.feed.Since(cursor)
	writeJSONStatus(w, http.StatusOK, eventsPage{
		Events: eventViews(events), Next: next, Dropped: dropped, Closed: closed,
	})
}

// eventsPage is the polling form of the progress feed.
type eventsPage struct {
	Events []json.RawMessage `json:"events"`
	// Next is the cursor to pass on the next poll.
	Next uint64 `json:"next"`
	// Dropped reports that the ring wrapped past the caller's cursor:
	// events were missed (the durable trace has them all).
	Dropped bool `json:"dropped,omitempty"`
	// Closed reports the run has finished; once the page is empty and
	// closed, polling is over.
	Closed bool `json:"closed,omitempty"`
}

func eventViews(events []trace.Event) []json.RawMessage {
	out := make([]json.RawMessage, 0, len(events))
	for i := range events {
		b, err := json.Marshal(&events[i])
		if err != nil {
			continue // unreachable: Event marshals cleanly by construction
		}
		out = append(out, b)
	}
	return out
}

// streamEvents serves the feed as Server-Sent Events: each trace
// event becomes an SSE message whose event field is the trace kind,
// whose id is the cursor (so EventSource reconnection resumes via
// Last-Event-ID), and whose data is the event's JSON. The stream ends
// with a `done` event when the run completes, or silently when the
// client disconnects.
func (s *Server) streamEvents(w http.ResponseWriter, r *http.Request, j *job, cursor uint64) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSONStatus(w, http.StatusNotAcceptable, map[string]string{"error": "streaming unsupported by this connection"})
		return
	}
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.ParseUint(v, 10, 64); err == nil {
			cursor = n + 1
		}
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-store")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	ctx := r.Context()
	for {
		if err := j.feed.Wait(ctx, cursor); err != nil {
			return // client went away
		}
		events, next, dropped, closed := j.feed.Since(cursor)
		base := next - uint64(len(events)) // first event's cursor (≥ asked-for when the ring wrapped)
		if dropped {
			fmt.Fprintf(w, "event: dropped\ndata: {\"resumeFrom\": %d}\n\n", base)
		}
		for i := range events {
			b, err := json.Marshal(&events[i])
			if err != nil {
				continue
			}
			fmt.Fprintf(w, "event: %s\nid: %d\ndata: %s\n\n", events[i].Kind, base+uint64(i), b)
		}
		cursor = next
		fl.Flush()
		if closed && len(events) == 0 {
			fmt.Fprint(w, "event: done\ndata: {}\n\n")
			fl.Flush()
			return
		}
	}
}
