package server

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"discoverxfd"
)

// Resident documents are the server's incremental-discovery surface:
// POST /v1/documents parses a document once and keeps its built
// hierarchy (and a dedicated engine with its warm partition layer)
// resident; PATCH /v1/documents/{id} applies an update script to it
// in place; POST /v1/documents/{id}/discover then runs incrementally,
// patching warm partitions instead of rebuilding them. This is the
// serving-layer shape of the update path — parse once, mutate and
// re-discover many times.

// document is one resident document: its engine (the warm layer is
// per-engine, so each document gets its own), its built hierarchy,
// and bookkeeping for the listing endpoint.
type document struct {
	id      string
	eng     *discoverxfd.Engine
	h       *discoverxfd.Hierarchy
	created time.Time

	mu      sync.Mutex
	updates int64 // ApplyUpdate batches accepted; guarded by mu
	ops     int64 // update operations inside them; guarded by mu
	runs    int64 // discoveries served; guarded by mu
}

// docStore is the bounded registry of resident documents. Unlike the
// job registry it never evicts silently — a resident document is
// client-owned state — so creation fails once the cap is reached
// until the client deletes one.
type docStore struct {
	mu   sync.Mutex
	max  int
	next int                  // guarded by mu
	docs map[string]*document // guarded by mu
}

func newDocStore(max int) *docStore {
	return &docStore{max: max, docs: make(map[string]*document)}
}

// ErrDocStoreFull rejects document creation at the cap.
var errDocStoreFull = &httpError{status: http.StatusConflict,
	msg: "document store is full; delete a resident document first"}

func (ds *docStore) add(eng *discoverxfd.Engine, h *discoverxfd.Hierarchy) (*document, error) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if len(ds.docs) >= ds.max {
		return nil, errDocStoreFull
	}
	ds.next++
	d := &document{
		id:      "doc-" + strconv.Itoa(ds.next),
		eng:     eng,
		h:       h,
		created: time.Now(),
	}
	ds.docs[d.id] = d
	return d, nil
}

func (ds *docStore) get(id string) *document {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.docs[id]
}

func (ds *docStore) remove(id string) *document {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	d := ds.docs[id]
	delete(ds.docs, id)
	return d
}

func (ds *docStore) list() []*document {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	out := make([]*document, 0, len(ds.docs))
	for _, d := range ds.docs {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].id < out[j].id })
	return out
}

func (ds *docStore) count() int {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return len(ds.docs)
}

// docInfo is the wire form of a resident document's summary.
type docInfo struct {
	ID        string `json:"id"`
	Created   string `json:"created"`
	Tuples    int    `json:"tuples"`
	Relations int    `json:"relations"`
	Updatable bool   `json:"updatable"`
	Updates   int64  `json:"updates"`
	UpdateOps int64  `json:"updateOps"`
	Runs      int64  `json:"runs"`
}

func (d *document) info() docInfo {
	d.h.RLock()
	tuples := d.h.TotalTuples()
	rels := len(d.h.Relations)
	upd := d.h.Updatable()
	d.h.RUnlock()
	d.mu.Lock()
	defer d.mu.Unlock()
	return docInfo{
		ID:        d.id,
		Created:   d.created.UTC().Format(time.RFC3339),
		Tuples:    tuples,
		Relations: rels,
		Updatable: upd,
		Updates:   d.updates,
		UpdateOps: d.ops,
		Runs:      d.runs,
	}
}

// handleCreateDocument is POST /v1/documents: parse the body like
// /v1/discover, build the hierarchy, and keep it resident. Building
// counts as work, so it runs under an admission slot.
func (s *Server) handleCreateDocument(w http.ResponseWriter, r *http.Request) {
	req, err := s.decodeParams(r)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	ctx := r.Context()
	if req.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, req.timeout)
		defer cancel()
	}
	if err := s.decodeBody(ctx, w, r, req); err != nil {
		s.writeError(w, r, err)
		return
	}
	release, err := s.adm.Acquire(ctx, req.tenant)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	defer release()
	s.stats.accepted.Add(1)

	// The engine outlives this request as the document's resident
	// engine, so it traces to the bare backend: stamping it with this
	// request's trace ids would mislabel every later run. Runs over
	// resident documents correlate with their requests through the
	// request span's timing instead.
	req.opts.Trace = s.cfg.Trace
	eng := discoverxfd.NewEngine(&req.opts)
	h, err := eng.BuildHierarchy(ctx, req.doc, req.schema)
	if err != nil {
		s.stats.failed.Add(1)
		s.met.retire(eng) // never became resident
		s.writeError(w, r, decodeErr("document", err))
		return
	}
	d, err := s.docs.add(eng, h)
	if err != nil {
		s.met.retire(eng) // store full: the engine dies with the request
		s.writeError(w, r, err)
		return
	}
	s.stats.docsCreated.Add(1)
	s.cfg.Log.Info("document resident", "id", d.id, "tuples", d.h.TotalTuples())
	writeJSONStatus(w, http.StatusCreated, d.info())
}

// handleListDocuments is GET /v1/documents.
func (s *Server) handleListDocuments(w http.ResponseWriter, r *http.Request) {
	ds := s.docs.list()
	infos := make([]docInfo, len(ds))
	for i, d := range ds {
		infos[i] = d.info()
	}
	writeJSONStatus(w, http.StatusOK, map[string]any{"documents": infos})
}

// handleGetDocument is GET /v1/documents/{id}.
func (s *Server) handleGetDocument(w http.ResponseWriter, r *http.Request) {
	d := s.docs.get(r.PathValue("id"))
	if d == nil {
		s.writeError(w, r, docNotFound(r.PathValue("id")))
		return
	}
	writeJSONStatus(w, http.StatusOK, d.info())
}

// handleDeleteDocument is DELETE /v1/documents/{id}.
func (s *Server) handleDeleteDocument(w http.ResponseWriter, r *http.Request) {
	d := s.docs.remove(r.PathValue("id"))
	if d == nil {
		s.writeError(w, r, docNotFound(r.PathValue("id")))
		return
	}
	// Fold the retired engine's final counters so the bridged engine
	// totals stay monotonic across the deletion.
	s.met.retire(d.eng)
	s.stats.docsDeleted.Add(1)
	writeJSONStatus(w, http.StatusOK, map[string]string{"deleted": d.id})
}

// updateResult is the wire form of an accepted update batch.
type updateResult struct {
	Ops int `json:"ops"`
	// Keys holds, per op, the affected pivot key — for inserts, the
	// newly assigned key, which later scripts use to address the
	// tuple.
	Keys []int `json:"keys"`
	// Relations lists the pivot paths of relations the batch touched.
	Relations []string `json:"relations"`
}

// handleUpdateDocument is PATCH /v1/documents/{id}: decode a JSON
// update script (see discoverxfd.ParseUpdates) and apply it to the
// resident hierarchy. On success the engine has already patched its
// warm partitions, so the next discover on the document runs
// incrementally; a rejected script (unknown key, schema violation)
// returns 422 with the failing op's error — earlier ops in the batch
// remain applied, exactly the library contract.
func (s *Server) handleUpdateDocument(w http.ResponseWriter, r *http.Request) {
	d := s.docs.get(r.PathValue("id"))
	if d == nil {
		s.writeError(w, r, docNotFound(r.PathValue("id")))
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	ops, err := discoverxfd.ParseUpdates(body)
	if err != nil {
		s.writeError(w, r, decodeErr("update script", err))
		return
	}
	if len(ops) == 0 {
		s.writeError(w, r, badRequest("empty update script"))
		return
	}
	s.fault("update", r)
	cs, err := d.eng.ApplyUpdate(d.h, ops)
	if err != nil {
		s.stats.docUpdatesRejected.Add(1)
		s.writeError(w, r, &httpError{status: http.StatusUnprocessableEntity, msg: err.Error()})
		return
	}
	d.mu.Lock()
	d.updates++
	d.ops += int64(cs.Ops())
	d.mu.Unlock()
	s.stats.docUpdates.Add(1)
	s.stats.docUpdateOps.Add(int64(cs.Ops()))

	out := updateResult{Ops: cs.Ops(), Keys: cs.Keys}
	for _, rc := range cs.Rels {
		if rc != nil {
			out.Relations = append(out.Relations, string(rc.Rel.Pivot))
		}
	}
	sort.Strings(out.Relations)
	writeJSONStatus(w, http.StatusOK, out)
}

// handleDiscoverDocument is POST /v1/documents/{id}/discover:
// synchronous discovery over the resident hierarchy, warm after the
// first run and incrementally after updates. Honors the same
// ?timeout= and ?degrade= parameters as /v1/discover.
func (s *Server) handleDiscoverDocument(w http.ResponseWriter, r *http.Request) {
	d := s.docs.get(r.PathValue("id"))
	if d == nil {
		s.writeError(w, r, docNotFound(r.PathValue("id")))
		return
	}
	req, err := s.decodeParams(r)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	ctx := r.Context()
	if req.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, req.timeout)
		defer cancel()
	}
	release, err := s.adm.Acquire(ctx, req.tenant)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	defer release()
	s.stats.accepted.Add(1)
	req.fire("admitted")

	res, err := d.eng.DiscoverHierarchy(ctx, d.h)
	if err != nil {
		s.stats.failed.Add(1)
		s.writeError(w, r, err)
		return
	}
	d.mu.Lock()
	d.runs++
	d.mu.Unlock()
	s.fault("result", r)
	s.finishRun(res)
	if status, ok := s.degradeStatus(res, req.degrade); !ok {
		writeJSONStatus(w, status, map[string]string{
			"error":  "deadline exceeded: " + res.Stats.TruncatedReason,
			"detail": "re-request with ?degrade=truncate to accept the partial result",
		})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if res.Stats.Truncated {
		w.Header().Set("X-Truncated", "true")
	}
	if err := discoverxfd.WriteJSON(w, res); err != nil {
		s.cfg.Log.Error("writing result", "err", err)
	}
}

func docNotFound(id string) error {
	return &httpError{status: http.StatusNotFound, msg: fmt.Sprintf("no resident document %q", id)}
}
