package schema

import "testing"

// FuzzParse asserts that arbitrary schema text never panics the
// parser, and that anything it accepts round-trips through its own
// String rendering.
func FuzzParse(f *testing.F) {
	f.Add("r: Rcd\n  a: str")
	f.Add("r: Rcd\n  s: SetOf Rcd\n    x: int\n    y: float")
	f.Add("r: Rcd\n  c: Choice\n    a: str\n    b: str")
	f.Add("r: SetOf str")
	f.Add(":")
	f.Add("r: Rcd\n\ta: str")
	f.Fuzz(func(t *testing.T, input string) {
		s, err := Parse(input)
		if err != nil {
			return
		}
		s2, err := Parse(s.String())
		if err != nil {
			t.Fatalf("accepted schema failed to re-parse: %v\ninput: %q\nrendered:\n%s", err, input, s)
		}
		if !s.Equal(s2) {
			t.Fatalf("round trip changed the schema\ninput: %q\nfirst:\n%s\nsecond:\n%s", input, s, s2)
		}
	})
}

// FuzzRelPathResolve asserts relative-path resolution never panics
// and inverts Relativize whenever both succeed.
func FuzzRelPathResolve(f *testing.F) {
	f.Add("/a/b/c", "./x")
	f.Add("/a/b/c", "../y/z")
	f.Add("/a", "..")
	f.Add("/a/b", ".")
	f.Fuzz(func(t *testing.T, pivot, rel string) {
		p := Path(pivot)
		abs, err := RelPath(rel).Resolve(p)
		if err != nil {
			return
		}
		if !p.IsValid() {
			return
		}
		back, err := Relativize(p, abs)
		if err != nil {
			t.Fatalf("Relativize(%q, %q) failed after successful Resolve: %v", p, abs, err)
		}
		abs2, err := back.Resolve(p)
		if err != nil || abs2 != abs {
			t.Fatalf("Resolve(Relativize) not identity: %q -> %q -> %q (%v)", abs, back, abs2, err)
		}
	})
}
