package schema

import (
	"fmt"
	"strings"
)

// Path is an absolute path expression /e1/e2/…/ek addressing a schema
// element or a set of data nodes (Section 2.1). The empty string is
// not a valid path.
type Path string

// RelPath is a path relative to some pivot path, formed with the
// XPath steps "." (self) and ".." (parent), e.g. "./ISBN" or
// "../contact/name". A relative path always begins with "./" or one
// or more "../" steps (or is exactly ".").
type RelPath string

// PathOf joins label steps into an absolute path.
func PathOf(steps ...string) Path {
	return Path("/" + strings.Join(steps, "/"))
}

// Steps splits the path into its element labels.
func (p Path) Steps() []string {
	s := strings.TrimPrefix(string(p), "/")
	if s == "" {
		return nil
	}
	return strings.Split(s, "/")
}

// Depth returns the number of steps in the path.
func (p Path) Depth() int { return len(p.Steps()) }

// Last returns the final label of the path.
func (p Path) Last() string {
	steps := p.Steps()
	if len(steps) == 0 {
		return ""
	}
	return steps[len(steps)-1]
}

// Parent returns the path with the final step removed, and whether
// the path had a parent (the root path has none).
func (p Path) Parent() (Path, bool) {
	steps := p.Steps()
	if len(steps) <= 1 {
		return "", false
	}
	return PathOf(steps[:len(steps)-1]...), true
}

// Child extends the path with one more step.
func (p Path) Child(label string) Path {
	return Path(string(p) + "/" + label)
}

// HasPrefix reports whether q is a (non-strict) step prefix of p.
func (p Path) HasPrefix(q Path) bool {
	if p == q {
		return true
	}
	return strings.HasPrefix(string(p), string(q)+"/")
}

// IsValid reports whether the path is syntactically well formed:
// non-empty, starting with "/", with no empty steps.
func (p Path) IsValid() bool {
	if p == "" || p[0] != '/' {
		return false
	}
	for _, s := range p.Steps() {
		if s == "" || s == "." || s == ".." {
			return false
		}
	}
	return len(p.Steps()) > 0
}

func (p Path) String() string { return string(p) }

// Resolve converts the relative path into an absolute path with
// respect to the given pivot path, following the paper's convention:
// "." refers to the pivot itself and ".." to its parent, so e.g. for
// pivot /warehouse/state/store the relative path ../name resolves to
// /warehouse/state/name.
func (r RelPath) Resolve(pivot Path) (Path, error) {
	steps := strings.Split(string(r), "/")
	cur := pivot.Steps()
	if len(cur) == 0 {
		return "", fmt.Errorf("schema: empty pivot path")
	}
	first := true
	for _, s := range steps {
		switch s {
		case "":
			return "", fmt.Errorf("schema: empty step in relative path %q", r)
		case ".":
			if !first {
				return "", fmt.Errorf("schema: %q: '.' is only valid as the first step", r)
			}
		case "..":
			if !first {
				// ".." may follow other ".." steps but not labels.
				if last := steps[0]; last != ".." {
					// handled below: we only allow leading runs.
				}
			}
			if len(cur) <= 1 {
				return "", fmt.Errorf("schema: %q ascends above the root from pivot %s", r, pivot)
			}
			cur = cur[:len(cur)-1]
		default:
			cur = append(cur, s)
		}
		first = false
	}
	out := PathOf(cur...)
	if !out.IsValid() {
		return "", fmt.Errorf("schema: relative path %q resolves to invalid path from pivot %s", r, pivot)
	}
	return out, nil
}

// Relativize expresses the absolute path p relative to the pivot
// path: if p is under the pivot the result starts with "./";
// otherwise it climbs with "../" steps to the longest common ancestor
// and descends from there. Relativize is the inverse of
// RelPath.Resolve for paths in the same tree.
func Relativize(pivot, p Path) (RelPath, error) {
	ps := pivot.Steps()
	ts := p.Steps()
	if len(ps) == 0 || len(ts) == 0 {
		return "", fmt.Errorf("schema: cannot relativize empty paths")
	}
	if ps[0] != ts[0] {
		return "", fmt.Errorf("schema: %s and %s are in different trees", pivot, p)
	}
	common := 0
	for common < len(ps) && common < len(ts) && ps[common] == ts[common] {
		common++
	}
	ups := len(ps) - common
	var b strings.Builder
	if ups == 0 {
		b.WriteString(".")
	} else {
		for i := 0; i < ups; i++ {
			if i > 0 {
				b.WriteByte('/')
			}
			b.WriteString("..")
		}
	}
	for _, s := range ts[common:] {
		b.WriteByte('/')
		b.WriteString(s)
	}
	return RelPath(b.String()), nil
}

// MustRelativize is Relativize but panics on error.
func MustRelativize(pivot, p Path) RelPath {
	r, err := Relativize(pivot, p)
	if err != nil {
		panic(err)
	}
	return r
}

func (r RelPath) String() string { return string(r) }
