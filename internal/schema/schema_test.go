package schema

import (
	"strings"
	"testing"
)

const warehouseText = `
warehouse: Rcd
  state: SetOf Rcd
    name: str
    store: SetOf Rcd
      contact: Rcd
        name: str
        address: str
      book: SetOf Rcd
        ISBN: str
        author: SetOf str
        title: str
        price: str
`

func warehouse(t *testing.T) *Schema {
	t.Helper()
	s, err := Parse(warehouseText)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return s
}

func TestParseRoundTrip(t *testing.T) {
	s := warehouse(t)
	s2, err := Parse(s.String())
	if err != nil {
		t.Fatalf("re-Parse: %v", err)
	}
	if !s.Equal(s2) {
		t.Fatalf("round trip changed the schema:\n%s\nvs\n%s", s, s2)
	}
}

func TestParseComments(t *testing.T) {
	s, err := Parse("# top comment\nroot: Rcd\n  # nested comment\n  a: str\n\n  b: int\n")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	el := s.MustResolve("/root/b")
	if el.Payload.Kind != Int {
		t.Fatalf("b should be int, got %v", el.Payload.Kind)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, text, wantSub string
	}{
		{"empty", "", "empty schema"},
		{"no colon", "root Rcd", "expected"},
		{"set root", "root: SetOf Rcd\n  a: str", "must not be a set"},
		{"unknown type", "root: Blob", "unknown type"},
		{"setof nothing", "root: Rcd\n  a: SetOf", "requires a member type"},
		{"child of leaf", "root: Rcd\n  a: str\n    b: str", "nested under a simple-typed"},
		{"double outdent", "root: Rcd\n  a: str\nb: str", "outside the root"},
		{"duplicate sibling", "root: Rcd\n  a: str\n  a: int", "duplicate field label"},
		{"extra token", "root: Rcd extra", "unexpected token"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Parse(c.text)
			if err == nil {
				t.Fatalf("expected error containing %q, got nil", c.wantSub)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("error %q does not contain %q", err, c.wantSub)
			}
		})
	}
}

func TestResolve(t *testing.T) {
	s := warehouse(t)
	cases := []struct {
		path       Path
		repeatable bool
		kind       Kind
	}{
		{"/warehouse", false, Record},
		{"/warehouse/state", true, Record},
		{"/warehouse/state/name", false, String},
		{"/warehouse/state/store/contact", false, Record},
		{"/warehouse/state/store/contact/name", false, String},
		{"/warehouse/state/store/book/author", true, String},
	}
	for _, c := range cases {
		el, err := s.Resolve(c.path)
		if err != nil {
			t.Fatalf("Resolve(%s): %v", c.path, err)
		}
		if el.Repeatable != c.repeatable {
			t.Errorf("%s: repeatable=%v, want %v", c.path, el.Repeatable, c.repeatable)
		}
		if el.Payload.Kind != c.kind {
			t.Errorf("%s: kind=%v, want %v", c.path, el.Payload.Kind, c.kind)
		}
	}
	for _, bad := range []Path{"/nope", "/warehouse/nope", "/warehouse/state/name/deeper", ""} {
		if _, err := s.Resolve(bad); err == nil {
			t.Errorf("Resolve(%q) should fail", bad)
		}
	}
}

func TestRepeatablePaths(t *testing.T) {
	s := warehouse(t)
	got := s.RepeatablePaths()
	want := []Path{
		"/warehouse/state",
		"/warehouse/state/store",
		"/warehouse/state/store/book",
		"/warehouse/state/store/book/author",
	}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestLongestRepeatablePrefix(t *testing.T) {
	s := warehouse(t)
	cases := []struct {
		in   Path
		want Path
		ok   bool
	}{
		{"/warehouse/state/store/contact/name", "/warehouse/state/store", true},
		{"/warehouse/state/store/book/author", "/warehouse/state/store/book/author", true},
		{"/warehouse/state/name", "/warehouse/state", true},
		{"/warehouse", "", false},
	}
	for _, c := range cases {
		got, ok := s.LongestRepeatablePrefix(c.in)
		if ok != c.ok || got != c.want {
			t.Errorf("LongestRepeatablePrefix(%s) = (%q,%v), want (%q,%v)", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestEqualIgnoresFieldOrder(t *testing.T) {
	a := MustParse("r: Rcd\n  x: str\n  y: int")
	b := MustParse("r: Rcd\n  y: int\n  x: str")
	if !a.Equal(b) {
		t.Fatal("field order should not affect Equal")
	}
	c := MustParse("r: Rcd\n  x: str\n  y: str")
	if a.Equal(c) {
		t.Fatal("different leaf types should not be Equal")
	}
}

func TestChoiceParsing(t *testing.T) {
	s := MustParse("r: Rcd\n  c: Choice\n    a: str\n    b: str")
	el := s.MustResolve("/r/c")
	if el.Payload.Kind != Choice {
		t.Fatalf("c should be Choice, got %v", el.Payload.Kind)
	}
}

func TestValidateRejectsSetOfSet(t *testing.T) {
	bad := &Schema{Root: "r", RootType: Rcd(F("s", SetOf(SetOf(Simple(String)))))}
	if err := bad.Validate(); err == nil {
		t.Fatal("SetOf SetOf should be rejected")
	}
}

func TestWalkOrder(t *testing.T) {
	s := warehouse(t)
	var paths []Path
	s.Walk(func(e Element) bool {
		paths = append(paths, e.Path)
		return true
	})
	if len(paths) != 12 {
		t.Fatalf("expected 12 elements, got %d: %v", len(paths), paths)
	}
	if paths[0] != "/warehouse" || paths[len(paths)-1] != "/warehouse/state/store/book/price" {
		t.Fatalf("unexpected walk order: %v", paths)
	}
}

func TestWalkPrune(t *testing.T) {
	s := warehouse(t)
	var n int
	s.Walk(func(e Element) bool {
		n++
		return e.Path != "/warehouse/state/store" // prune below store
	})
	if n != 4 { // warehouse, state, name, store
		t.Fatalf("pruned walk visited %d elements, want 4", n)
	}
}
