package schema

import (
	"strings"
	"testing"
)

func TestConstructorsAndPanics(t *testing.T) {
	ch := Ch(F("a", Simple(String)), F("b", Simple(Int)))
	if ch.Kind != Choice || len(ch.Fields) != 2 {
		t.Fatalf("Ch wrong: %+v", ch)
	}
	s := MustNew("r", Rcd(F("c", ch)))
	if s.MustResolve("/r/c/b").Payload.Kind != Int {
		t.Fatal("resolve through Choice failed")
	}

	assertPanics(t, "Simple(Set)", func() { Simple(Set) })
	assertPanics(t, "MustNew invalid", func() { MustNew("", nil) })
	assertPanics(t, "MustParse invalid", func() { MustParse(":") })
	assertPanics(t, "MustResolve invalid", func() { s.MustResolve("/nope") })
	assertPanics(t, "MustRelativize invalid", func() { MustRelativize("/a/x", "/b/y") })
}

func assertPanics(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s should panic", name)
		}
	}()
	fn()
}

func TestValidateBranches(t *testing.T) {
	cases := []struct {
		name string
		s    *Schema
		sub  string
	}{
		{"nil", nil, "nil schema"},
		{"nil root type", &Schema{Root: "r"}, "nil schema"},
		{"empty root label", &Schema{Root: "", RootType: Rcd(F("a", Simple(String)))}, "empty root"},
		{"set root", &Schema{Root: "r", RootType: SetOf(Simple(String))}, "must not be a set"},
		{"empty record", &Schema{Root: "r", RootType: &Type{Kind: Record}}, "no fields"},
		{"nil field type", &Schema{Root: "r", RootType: Rcd(Field{Label: "a"})}, "nil type"},
		{"empty label", &Schema{Root: "r", RootType: Rcd(Field{Label: "", Type: Simple(String)})}, "empty field label"},
		{"set missing elem", &Schema{Root: "r", RootType: Rcd(F("s", &Type{Kind: Set}))}, "no member type"},
		{"bad kind", &Schema{Root: "r", RootType: &Type{Kind: Kind(99)}}, "unknown kind"},
	}
	for _, c := range cases {
		err := c.s.Validate()
		if err == nil || !strings.Contains(err.Error(), c.sub) {
			t.Errorf("%s: err %v, want substring %q", c.name, err, c.sub)
		}
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		String: "str", Int: "int", Float: "float",
		Set: "SetOf", Record: "Rcd", Choice: "Choice", Kind(42): "Kind(42)",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k.String(), want)
		}
	}
}

func TestEqualBranches(t *testing.T) {
	a := MustParse("r: Rcd\n  x: str")
	if a.Equal(nil) || !a.Equal(a) {
		t.Fatal("nil/self Equal wrong")
	}
	b := MustParse("q: Rcd\n  x: str")
	if a.Equal(b) {
		t.Fatal("different roots must differ")
	}
	c := MustParse("r: Rcd\n  x: str\n  y: str")
	if a.Equal(c) {
		t.Fatal("different field counts must differ")
	}
	d := MustParse("r: Rcd\n  s: SetOf str")
	e := MustParse("r: Rcd\n  s: SetOf int")
	if d.Equal(e) {
		t.Fatal("set member types must be compared")
	}
}
