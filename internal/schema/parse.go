package schema

import (
	"fmt"
	"strings"
)

// Parse reads a schema in the nested-relational text notation of the
// paper's Figure 2. Each line declares one element as
//
//	<label>: [SetOf] (str|int|float|Rcd|Choice)
//
// and nesting is expressed by indentation (any amount of leading
// whitespace, as long as children are indented strictly more than
// their parent). Blank lines and lines starting with '#' are ignored.
// Example:
//
//	warehouse: Rcd
//	  state: SetOf Rcd
//	    name: str
//	    store: SetOf Rcd
//	      contact: Rcd
//	        name: str
//	        address: str
//	      book: SetOf Rcd
//	        ISBN: str
//	        author: SetOf str
//	        title: str
//	        price: str
func Parse(text string) (*Schema, error) {
	type line struct {
		no     int
		indent int
		label  string
		set    bool
		kind   Kind
	}
	var lines []line
	for no, raw := range strings.Split(text, "\n") {
		trimmed := strings.TrimSpace(raw)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		indent := indentWidth(raw)
		colon := strings.Index(trimmed, ":")
		if colon <= 0 {
			return nil, fmt.Errorf("schema: line %d: expected \"label: type\", got %q", no+1, trimmed)
		}
		label := strings.TrimSpace(trimmed[:colon])
		rest := strings.Fields(trimmed[colon+1:])
		if len(label) == 0 || len(rest) == 0 || len(rest) > 2 {
			return nil, fmt.Errorf("schema: line %d: malformed declaration %q", no+1, trimmed)
		}
		ln := line{no: no + 1, indent: indent, label: label}
		ti := 0
		if rest[0] == "SetOf" {
			ln.set = true
			ti = 1
			if len(rest) == 1 {
				return nil, fmt.Errorf("schema: line %d: SetOf requires a member type", no+1)
			}
		} else if len(rest) == 2 {
			return nil, fmt.Errorf("schema: line %d: unexpected token %q", no+1, rest[1])
		}
		switch rest[ti] {
		case "str":
			ln.kind = String
		case "int":
			ln.kind = Int
		case "float":
			ln.kind = Float
		case "Rcd":
			ln.kind = Record
		case "Choice":
			ln.kind = Choice
		default:
			return nil, fmt.Errorf("schema: line %d: unknown type %q", no+1, rest[ti])
		}
		lines = append(lines, ln)
	}
	if len(lines) == 0 {
		return nil, fmt.Errorf("schema: empty schema text")
	}
	if lines[0].set {
		return nil, fmt.Errorf("schema: line %d: root element %q must not be a set element",
			lines[0].no, lines[0].label)
	}

	// Build the tree with an indentation stack.
	type frame struct {
		indent int
		typ    *Type // the Record/Choice payload receiving children
	}
	makeType := func(ln line) *Type {
		var t *Type
		switch ln.kind {
		case Record, Choice:
			t = &Type{Kind: ln.kind}
		default:
			t = &Type{Kind: ln.kind}
		}
		if ln.set {
			t = SetOf(t)
		}
		return t
	}
	payloadOf := func(t *Type) *Type {
		if t.Kind == Set {
			return t.Elem
		}
		return t
	}

	rootType := makeType(lines[0])
	stack := []frame{{indent: lines[0].indent, typ: payloadOf(rootType)}}
	for _, ln := range lines[1:] {
		for len(stack) > 0 && ln.indent <= stack[len(stack)-1].indent {
			stack = stack[:len(stack)-1]
		}
		if len(stack) == 0 {
			return nil, fmt.Errorf("schema: line %d: element %q is outside the root element", ln.no, ln.label)
		}
		parent := stack[len(stack)-1].typ
		if parent.Kind != Record && parent.Kind != Choice {
			return nil, fmt.Errorf("schema: line %d: element %q nested under a simple-typed element", ln.no, ln.label)
		}
		t := makeType(ln)
		parent.Fields = append(parent.Fields, Field{Label: ln.label, Type: t})
		if p := payloadOf(t); p.Kind == Record || p.Kind == Choice {
			stack = append(stack, frame{indent: ln.indent, typ: p})
		} else {
			// Simple leaves can still "own" deeper indentation only
			// erroneously; keep them off the stack so such input fails
			// the parent-kind check above.
			stack = append(stack, frame{indent: ln.indent, typ: p})
		}
	}
	return New(lines[0].label, rootType)
}

// MustParse is Parse but panics on error; for statically known
// schema literals in tests and examples.
func MustParse(text string) *Schema {
	s, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return s
}

func indentWidth(raw string) int {
	w := 0
	for _, r := range raw {
		switch r {
		case ' ':
			w++
		case '\t':
			w += 4
		default:
			return w
		}
	}
	return w
}
