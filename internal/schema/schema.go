// Package schema implements the XML schema model of Yu & Jagadish
// (VLDB 2006), Definition 1: a schema is a set of labeled elements,
// each associated with a type drawn from
//
//	τ ::= str | int | float | SetOf τ | Rcd[e1:τ1,…,en:τn] | Choice[e1:τ1,…,en:τn]
//
// together with a distinguished root element whose type is not SetOf.
// The model corresponds to the core constructs of XML Schema: Rcd is
// the "all"/"sequence" model group (order is ignored), Choice is the
// "choice" model group, and SetOf marks elements with maxOccurs > 1.
// Attributes are treated like elements whose label carries an "@"
// prefix.
//
// The package also provides path expressions over schemas (absolute
// paths such as /warehouse/state/store, and relative paths using the
// XPath steps "." and ".."), the notion of repeatable paths (paths
// ending at a set element), and a compact nested-relational text
// notation (the paper's Figure 2) for reading and writing schemas.
package schema

import (
	"fmt"
	"sort"
	"strings"
)

// Kind enumerates the type constructors of Definition 1.
type Kind int

const (
	// String is the system-defined simple type str.
	String Kind = iota
	// Int is the system-defined simple type int.
	Int
	// Float is the system-defined simple type float.
	Float
	// Set is the SetOf constructor: the element may occur multiple
	// times under one parent in the data.
	Set
	// Record is the Rcd constructor: a complex element with a fixed
	// collection of child elements (order ignored).
	Record
	// Choice is the Choice constructor: a complex element with
	// exactly one of the listed child elements present.
	Choice
)

// String returns the keyword used in the nested-relational notation.
func (k Kind) String() string {
	switch k {
	case String:
		return "str"
	case Int:
		return "int"
	case Float:
		return "float"
	case Set:
		return "SetOf"
	case Record:
		return "Rcd"
	case Choice:
		return "Choice"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// IsSimple reports whether the kind is one of the system-defined
// simple types str, int, float.
func (k Kind) IsSimple() bool { return k == String || k == Int || k == Float }

// Type is a schema type. Exactly one of the auxiliary fields is
// meaningful, determined by Kind:
//
//   - Set: Elem holds the member type,
//   - Record, Choice: Fields holds the child elements,
//   - simple kinds: no auxiliary data.
type Type struct {
	Kind   Kind
	Elem   *Type   // member type when Kind == Set
	Fields []Field // child elements when Kind is Record or Choice
}

// Field is one labeled child element of a Record or Choice type.
type Field struct {
	Label string
	Type  *Type
}

// Schema is a complete schema: a root element label and its type.
// Per Definition 1 the root type must not be SetOf.
type Schema struct {
	Root     string
	RootType *Type
}

// Simple constructs a simple type of the given kind. It panics if the
// kind is not simple; schema construction errors are programmer
// errors.
func Simple(k Kind) *Type {
	if !k.IsSimple() {
		panic("schema: Simple called with non-simple kind " + k.String())
	}
	return &Type{Kind: k}
}

// SetOf constructs a SetOf type with the given member type.
func SetOf(elem *Type) *Type { return &Type{Kind: Set, Elem: elem} }

// Rcd constructs a record type from the given fields.
func Rcd(fields ...Field) *Type { return &Type{Kind: Record, Fields: fields} }

// Ch constructs a choice type from the given fields.
func Ch(fields ...Field) *Type { return &Type{Kind: Choice, Fields: fields} }

// F is shorthand for constructing a Field.
func F(label string, t *Type) Field { return Field{Label: label, Type: t} }

// New constructs a schema and validates it. The root type must not be
// a set type, labels must be non-empty and unique among siblings.
func New(root string, rootType *Type) (*Schema, error) {
	s := &Schema{Root: root, RootType: rootType}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// MustNew is New but panics on error; intended for tests and
// statically known schemas.
func MustNew(root string, rootType *Type) *Schema {
	s, err := New(root, rootType)
	if err != nil {
		panic(err)
	}
	return s
}

// Validate checks the structural invariants of the schema: the root
// is labeled and not a set, every label is non-empty, sibling labels
// are unique, set member types are present, and complex types have at
// least one field.
func (s *Schema) Validate() error {
	if s == nil || s.RootType == nil {
		return fmt.Errorf("schema: nil schema or root type")
	}
	if s.Root == "" {
		return fmt.Errorf("schema: empty root label")
	}
	if s.RootType.Kind == Set {
		return fmt.Errorf("schema: root element %q must not be a set element", s.Root)
	}
	return validateType(s.RootType, "/"+s.Root)
}

func validateType(t *Type, at string) error {
	if t == nil {
		return fmt.Errorf("schema: nil type at %s", at)
	}
	switch t.Kind {
	case String, Int, Float:
		return nil
	case Set:
		if t.Elem == nil {
			return fmt.Errorf("schema: set at %s has no member type", at)
		}
		if t.Elem.Kind == Set {
			return fmt.Errorf("schema: set of set at %s is not expressible in the data model", at)
		}
		return validateType(t.Elem, at)
	case Record, Choice:
		if len(t.Fields) == 0 {
			return fmt.Errorf("schema: complex type at %s has no fields", at)
		}
		seen := make(map[string]bool, len(t.Fields))
		for _, f := range t.Fields {
			if f.Label == "" {
				return fmt.Errorf("schema: empty field label at %s", at)
			}
			if seen[f.Label] {
				return fmt.Errorf("schema: duplicate field label %q at %s", f.Label, at)
			}
			seen[f.Label] = true
			if err := validateType(f.Type, at+"/"+f.Label); err != nil {
				return err
			}
		}
		return nil
	default:
		return fmt.Errorf("schema: unknown kind %d at %s", int(t.Kind), at)
	}
}

// unwrapSet strips at most one SetOf constructor, returning the
// payload type and whether the element is repeatable.
func unwrapSet(t *Type) (payload *Type, repeatable bool) {
	if t.Kind == Set {
		return t.Elem, true
	}
	return t, false
}

// Element describes one schema element reached by a path.
type Element struct {
	// Path is the absolute path of the element.
	Path Path
	// Label is the final step of the path.
	Label string
	// Type is the element's declared type (including any SetOf
	// wrapper).
	Type *Type
	// Repeatable reports whether the element is a set element.
	Repeatable bool
	// Payload is Type with any SetOf wrapper removed.
	Payload *Type
}

// Resolve looks up the schema element addressed by an absolute path.
// Per Section 2.1 a path /e1/e2/…/ek addresses element ek reached by
// following record (or choice) fields from the root.
func (s *Schema) Resolve(p Path) (Element, error) {
	steps := p.Steps()
	if len(steps) == 0 {
		return Element{}, fmt.Errorf("schema: empty path")
	}
	if steps[0] != s.Root {
		return Element{}, fmt.Errorf("schema: path %s does not start at root %q", p, s.Root)
	}
	cur := s.RootType
	label := s.Root
	for i := 1; i < len(steps); i++ {
		payload, _ := unwrapSet(cur)
		if payload.Kind != Record && payload.Kind != Choice {
			return Element{}, fmt.Errorf("schema: %s has no children; cannot descend to %q in %s",
				PathOf(steps[:i]...), steps[i], p)
		}
		var next *Type
		for _, f := range payload.Fields {
			if f.Label == steps[i] {
				next = f.Type
				break
			}
		}
		if next == nil {
			return Element{}, fmt.Errorf("schema: no element %q under %s in path %s",
				steps[i], PathOf(steps[:i]...), p)
		}
		cur = next
		label = steps[i]
	}
	payload, rep := unwrapSet(cur)
	return Element{Path: p, Label: label, Type: cur, Repeatable: rep, Payload: payload}, nil
}

// MustResolve is Resolve but panics on error.
func (s *Schema) MustResolve(p Path) Element {
	e, err := s.Resolve(p)
	if err != nil {
		panic(err)
	}
	return e
}

// Walk visits every schema element in depth-first, declaration order,
// starting at the root. The visit function receives the element; if
// it returns false the element's descendants are skipped.
func (s *Schema) Walk(visit func(Element) bool) {
	var rec func(p Path, label string, t *Type)
	rec = func(p Path, label string, t *Type) {
		payload, rep := unwrapSet(t)
		if !visit(Element{Path: p, Label: label, Type: t, Repeatable: rep, Payload: payload}) {
			return
		}
		if payload.Kind == Record || payload.Kind == Choice {
			for _, f := range payload.Fields {
				rec(p.Child(f.Label), f.Label, f.Type)
			}
		}
	}
	rec(PathOf(s.Root), s.Root, s.RootType)
}

// RepeatablePaths returns the repeatable paths of the schema — the
// paths of all set elements — in depth-first declaration order. These
// are exactly the pivot paths of the essential tuple classes
// (Section 3.2.2).
func (s *Schema) RepeatablePaths() []Path {
	var out []Path
	s.Walk(func(e Element) bool {
		if e.Repeatable {
			out = append(out, e.Path)
		}
		return true
	})
	return out
}

// LongestRepeatablePrefix returns the longest repeatable path that is
// a proper-or-equal prefix of p, and whether one exists. For the path
// of a set element the result is the path itself.
func (s *Schema) LongestRepeatablePrefix(p Path) (Path, bool) {
	steps := p.Steps()
	for i := len(steps); i >= 1; i-- {
		prefix := PathOf(steps[:i]...)
		e, err := s.Resolve(prefix)
		if err != nil {
			return "", false
		}
		if e.Repeatable {
			return prefix, true
		}
	}
	return "", false
}

// Equal reports whether two schemas are structurally identical,
// ignoring field order within records and choices (the data model
// ignores element order).
func (s *Schema) Equal(o *Schema) bool {
	if s == nil || o == nil {
		return s == o
	}
	return s.Root == o.Root && typeEqual(s.RootType, o.RootType)
}

func typeEqual(a, b *Type) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case Set:
		return typeEqual(a.Elem, b.Elem)
	case Record, Choice:
		if len(a.Fields) != len(b.Fields) {
			return false
		}
		af := sortedFields(a.Fields)
		bf := sortedFields(b.Fields)
		for i := range af {
			if af[i].Label != bf[i].Label || !typeEqual(af[i].Type, bf[i].Type) {
				return false
			}
		}
		return true
	default:
		return true
	}
}

func sortedFields(fs []Field) []Field {
	out := make([]Field, len(fs))
	copy(out, fs)
	sort.Slice(out, func(i, j int) bool { return out[i].Label < out[j].Label })
	return out
}

// String renders the schema in the nested-relational notation of the
// paper's Figure 2.
func (s *Schema) String() string {
	var b strings.Builder
	writeElem(&b, 0, s.Root, s.RootType)
	return b.String()
}

func writeElem(b *strings.Builder, depth int, label string, t *Type) {
	for i := 0; i < depth; i++ {
		b.WriteString("  ")
	}
	b.WriteString(label)
	b.WriteString(": ")
	payload, rep := unwrapSet(t)
	if rep {
		b.WriteString("SetOf ")
	}
	b.WriteString(payload.Kind.String())
	b.WriteByte('\n')
	if payload.Kind == Record || payload.Kind == Choice {
		for _, f := range payload.Fields {
			writeElem(b, depth+1, f.Label, f.Type)
		}
	}
}
