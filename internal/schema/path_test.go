package schema

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestPathBasics(t *testing.T) {
	p := PathOf("a", "b", "c")
	if p != "/a/b/c" {
		t.Fatalf("PathOf = %q", p)
	}
	if p.Depth() != 3 || p.Last() != "c" {
		t.Fatalf("Depth/Last wrong: %d %q", p.Depth(), p.Last())
	}
	parent, ok := p.Parent()
	if !ok || parent != "/a/b" {
		t.Fatalf("Parent = %q,%v", parent, ok)
	}
	if _, ok := Path("/a").Parent(); ok {
		t.Fatal("root path should have no parent")
	}
	if p.Child("d") != "/a/b/c/d" {
		t.Fatalf("Child wrong")
	}
	if !p.HasPrefix("/a/b") || !p.HasPrefix(p) || p.HasPrefix("/a/bx") {
		t.Fatal("HasPrefix wrong")
	}
}

func TestPathIsValid(t *testing.T) {
	valid := []Path{"/a", "/a/b", "/warehouse/state"}
	invalid := []Path{"", "a", "/", "//a", "/a//b", "/a/./b", "/a/../b"}
	for _, p := range valid {
		if !p.IsValid() {
			t.Errorf("%q should be valid", p)
		}
	}
	for _, p := range invalid {
		if p.IsValid() {
			t.Errorf("%q should be invalid", p)
		}
	}
}

func TestRelPathResolve(t *testing.T) {
	pivot := Path("/warehouse/state/store/book")
	cases := []struct {
		rel  RelPath
		want Path
	}{
		{"./ISBN", "/warehouse/state/store/book/ISBN"},
		{".", "/warehouse/state/store/book"},
		{"../contact/name", "/warehouse/state/store/contact/name"},
		{"../../name", "/warehouse/state/name"},
		{"..", "/warehouse/state/store"},
		{"../..", "/warehouse/state"},
	}
	for _, c := range cases {
		got, err := c.rel.Resolve(pivot)
		if err != nil {
			t.Fatalf("Resolve(%q): %v", c.rel, err)
		}
		if got != c.want {
			t.Errorf("Resolve(%q) = %q, want %q", c.rel, got, c.want)
		}
	}
	for _, bad := range []RelPath{"../../../../..", "a//b", ""} {
		if _, err := bad.Resolve(pivot); err == nil {
			t.Errorf("Resolve(%q) should fail", bad)
		}
	}
}

func TestRelativize(t *testing.T) {
	cases := []struct {
		pivot, p Path
		want     RelPath
	}{
		{"/w/s/b", "/w/s/b/x", "./x"},
		{"/w/s/b", "/w/s/b", "."},
		{"/w/s/b", "/w/s/c/n", "../c/n"},
		{"/w/s/b", "/w/n", "../../n"},
		{"/w/s/b", "/w/s", ".."},
	}
	for _, c := range cases {
		got, err := Relativize(c.pivot, c.p)
		if err != nil {
			t.Fatalf("Relativize(%s,%s): %v", c.pivot, c.p, err)
		}
		if got != c.want {
			t.Errorf("Relativize(%s,%s) = %q, want %q", c.pivot, c.p, got, c.want)
		}
	}
	if _, err := Relativize("/a/x", "/b/y"); err == nil {
		t.Error("different roots should fail")
	}
}

// TestRelativizeResolveInverse property-checks that Resolve inverts
// Relativize for randomly generated path pairs sharing a root.
func TestRelativizeResolveInverse(t *testing.T) {
	gen := func(seed uint8, downA, downB []uint8) bool {
		mk := func(downs []uint8) Path {
			steps := []string{"root"}
			for _, d := range downs {
				steps = append(steps, string(rune('a'+d%5)))
			}
			if len(steps) > 6 {
				steps = steps[:6]
			}
			return PathOf(steps...)
		}
		pivot, p := mk(downA), mk(downB)
		rel, err := Relativize(pivot, p)
		if err != nil {
			return false
		}
		back, err := rel.Resolve(pivot)
		return err == nil && back == p
	}
	if err := quick.Check(gen, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestRelPathStrings(t *testing.T) {
	if RelPath("./x").String() != "./x" || Path("/a").String() != "/a" {
		t.Fatal("String methods wrong")
	}
	if !strings.HasPrefix(string(MustRelativize("/a/b", "/a/c")), "..") {
		t.Fatal("sibling relativization should climb")
	}
}
