package refine

import (
	"strings"
	"testing"

	"discoverxfd/internal/core"
	"discoverxfd/internal/datatree"
	"discoverxfd/internal/relation"
	"discoverxfd/internal/schema"
)

const shopXML = `
<shop>
  <item><sku>1</sku><name>Pen</name><color>blue</color></item>
  <item><sku>1</sku><name>Pen</name><color>red</color></item>
  <item><sku>2</sku><name>Pad</name><color>blue</color></item>
  <item><sku>2</sku><name>Pad</name><color>green</color></item>
  <item><sku>3</sku><name>Ink</name><color>black</color></item>
</shop>`

func build(t *testing.T, xml string) (*datatree.Tree, *relation.Hierarchy, *core.Result) {
	t.Helper()
	tree, err := datatree.ParseXMLString(xml)
	if err != nil {
		t.Fatal(err)
	}
	s, err := datatree.InferSchema(tree)
	if err != nil {
		t.Fatal(err)
	}
	h, err := relation.Build(tree, s, relation.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Discover(h, core.Options{PropagatePartial: true})
	if err != nil {
		t.Fatal(err)
	}
	return tree, h, res
}

func TestSuggestRanksBySavedValues(t *testing.T) {
	_, h, res := build(t, shopXML)
	sugs := Suggest(h, res)
	if len(sugs) == 0 {
		t.Fatal("expected suggestions for the duplicated sku->name pairs")
	}
	for i := 1; i < len(sugs); i++ {
		if sugs[i].SavedValues > sugs[i-1].SavedValues {
			t.Fatalf("suggestions not ranked: %v", sugs)
		}
	}
	found := false
	for _, s := range sugs {
		if string(s.FD.RHS) == "./name" && len(s.FD.LHS) == 1 && string(s.FD.LHS[0]) == "./sku" {
			found = true
			if s.SavedValues != 2 {
				t.Fatalf("sku->name should save 2 values, got %d", s.SavedValues)
			}
			if !s.Applicable {
				t.Fatalf("leaf intra FD must be applicable")
			}
			if !strings.Contains(s.NewElement, "item_name_by_sku") {
				t.Fatalf("unexpected element label %q", s.NewElement)
			}
		}
	}
	if !found {
		t.Fatalf("no suggestion for sku->name; got %v", sugs)
	}
}

func TestApplyEliminatesRedundancy(t *testing.T) {
	tree, h, res := build(t, shopXML)
	var fd core.FD
	ok := false
	for _, f := range res.FDs {
		if string(f.RHS) == "./name" && len(f.LHS) == 1 && string(f.LHS[0]) == "./sku" {
			fd, ok = f, true
		}
	}
	if !ok {
		t.Fatal("sku->name not discovered")
	}
	removed, err := Apply(tree, h, fd)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 5 {
		t.Fatalf("removed %d name occurrences, want 5", removed)
	}
	// Items no longer carry name.
	for _, item := range tree.Root.ChildrenLabeled("item") {
		if item.Child("name") != nil {
			t.Fatalf("item still has a name:\n%s", tree)
		}
	}
	// The lookup element holds 3 entries (distinct skus), each with a
	// sku and a name.
	lookups := tree.Root.ChildrenLabeled("item_name_by_sku")
	if len(lookups) != 3 {
		t.Fatalf("lookup entries = %d, want 3:\n%s", len(lookups), tree)
	}
	for _, l := range lookups {
		if l.Child("sku") == nil || l.Child("name") == nil {
			t.Fatalf("lookup entry incomplete:\n%s", tree)
		}
	}
	// Re-discover on the refined document: the sku->name redundancy
	// within items is gone, and sku is now a key of the lookup class.
	s2, err := datatree.InferSchema(tree)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := relation.Build(tree, s2, relation.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := core.Discover(h2, core.Options{PropagatePartial: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res2.Redundancies {
		if r.FD.Class == "/shop/item" && string(r.FD.RHS) == "./name" {
			t.Fatalf("name redundancy survived the repair: %v", r)
		}
	}
	keyFound := false
	for _, k := range res2.Keys {
		if k.Class == "/shop/item_name_by_sku" && len(k.LHS) == 1 && string(k.LHS[0]) == "./sku" {
			keyFound = true
		}
	}
	if !keyFound {
		t.Fatalf("sku should be a key of the lookup class; keys: %v", res2.Keys)
	}
}

func TestApplySetRHS(t *testing.T) {
	xml := `
<lib>
  <book><isbn>1</isbn><author>A</author><author>B</author></book>
  <book><isbn>1</isbn><author>B</author><author>A</author></book>
  <book><isbn>2</isbn><author>C</author></book>
</lib>`
	tree, h, res := build(t, xml)
	var fd core.FD
	ok := false
	for _, f := range res.FDs {
		if string(f.RHS) == "./author" && len(f.LHS) == 1 && string(f.LHS[0]) == "./isbn" {
			fd, ok = f, true
		}
	}
	if !ok {
		t.Fatalf("isbn->author not discovered: %v", res.FDs)
	}
	removed, err := Apply(tree, h, fd)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 5 {
		t.Fatalf("removed %d authors, want 5", removed)
	}
	lookups := tree.Root.ChildrenLabeled("book_author_by_isbn")
	if len(lookups) != 2 {
		t.Fatalf("lookup entries = %d, want 2", len(lookups))
	}
	// The isbn-1 entry keeps its full author set.
	for _, l := range lookups {
		if l.Child("isbn").Value == "1" && len(l.ChildrenLabeled("author")) != 2 {
			t.Fatalf("author set not preserved:\n%s", tree)
		}
	}
}

func TestApplyRejectsInterFDs(t *testing.T) {
	tree, h, _ := build(t, shopXML)
	fd := core.FD{Class: "/shop/item", LHS: []schema.RelPath{"../x"}, RHS: "./name", Inter: true}
	if _, err := Apply(tree, h, fd); err == nil {
		t.Fatal("inter-relation FDs must be rejected")
	}
}

func TestSuggestionString(t *testing.T) {
	s := Suggestion{
		FD:         core.FD{Class: "/a/b", LHS: []schema.RelPath{"./x"}, RHS: "./y"},
		NewElement: "b_y_by_x", SavedValues: 7,
	}
	out := s.String()
	if !strings.Contains(out, "b_y_by_x") || !strings.Contains(out, "7 value(s)") || !strings.Contains(out, "(manual)") {
		t.Fatalf("String: %q", out)
	}
}
