package refine

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"discoverxfd/internal/core"
	"discoverxfd/internal/datatree"
	"discoverxfd/internal/relation"
)

// randomShop builds a flat random document with injected sku->name
// redundancy plus noise columns.
func randomShop(seed int64) *datatree.Tree {
	r := rand.New(rand.NewSource(seed))
	nameOf := map[int]string{}
	root := &datatree.Node{Label: "shop"}
	for i, n := 0, 5+r.Intn(20); i < n; i++ {
		sku := r.Intn(6)
		if _, ok := nameOf[sku]; !ok {
			nameOf[sku] = fmt.Sprintf("N%d", sku*7)
		}
		item := root.AddChild("item")
		item.AddLeaf("sku", fmt.Sprintf("%d", sku))
		item.AddLeaf("name", nameOf[sku])
		item.AddLeaf("qty", fmt.Sprintf("%d", r.Intn(4)))
	}
	return datatree.NewTree(root)
}

// TestApplyPropertyReducesRedundancy property-checks the repair loop:
// applying any applicable suggestion keeps the document
// schema-consistent and never increases the total witnessed
// redundancy.
func TestApplyPropertyReducesRedundancy(t *testing.T) {
	f := func(seed int64) bool {
		tree := randomShop(seed)
		s, err := datatree.InferSchema(tree)
		if err != nil {
			return false
		}
		h, err := relation.Build(tree, s, relation.Options{})
		if err != nil {
			return false
		}
		res, err := core.Discover(h, core.Options{PropagatePartial: true})
		if err != nil {
			return false
		}
		before := 0
		for _, r := range res.Redundancies {
			before += r.RedundantValues
		}
		var next *Suggestion
		for _, sg := range Suggest(h, res) {
			if sg.Applicable {
				sg := sg
				next = &sg
				break
			}
		}
		if next == nil {
			return true // nothing to repair
		}
		if _, err := Apply(tree, h, next.FD); err != nil {
			return false
		}
		s2, err := datatree.InferSchema(tree)
		if err != nil {
			return false
		}
		if err := datatree.Conform(tree, s2); err != nil {
			return false
		}
		h2, err := relation.Build(tree, s2, relation.Options{})
		if err != nil {
			return false
		}
		res2, err := core.Discover(h2, core.Options{PropagatePartial: true})
		if err != nil {
			return false
		}
		after := 0
		for _, r := range res2.Redundancies {
			after += r.RedundantValues
		}
		return after <= before
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
