// Package refine turns discovery output into schema-refinement
// actions, the workflow the paper's introduction motivates:
// "discovery of redundancies ... will provide the critical first step
// for analyzing and refining such schemas." Following the XML Normal
// Form (XNF) intuition of Arenas & Libkin that Definition 11 builds
// on, a document is redundancy-free exactly when every interesting
// FD's LHS is a key; each violating FD is repaired by *moving* the
// RHS element into a new set element keyed by the LHS (the XML
// analogue of a relational decomposition).
//
// Suggest ranks the repairs by the redundant values they would save;
// Apply performs a repair on the document — hoisting one (LHS, RHS)
// pair per distinct LHS value into a new top-level lookup element and
// deleting the now-derivable RHS nodes — so the effect can be
// verified by re-running discovery.
package refine

import (
	"fmt"
	"sort"
	"strings"

	"discoverxfd/internal/core"
	"discoverxfd/internal/datatree"
	"discoverxfd/internal/relation"
	"discoverxfd/internal/schema"
)

// Suggestion is one proposed refinement.
type Suggestion struct {
	// FD is the redundancy-indicating FD being repaired.
	FD core.FD
	// NewElement is the label of the proposed top-level set element
	// that will hold one (LHS, RHS) pair per distinct LHS value.
	NewElement string
	// SavedValues counts the RHS occurrences the repair removes
	// beyond one per distinct LHS value.
	SavedValues int
	// Applicable reports whether Apply supports the FD: an
	// intra-relation FD over leaf LHS paths with a leaf or
	// simple-set RHS. Inter-relation and complex-valued repairs are
	// reported as suggestions only.
	Applicable bool
}

func (s Suggestion) String() string {
	tag := ""
	if !s.Applicable {
		tag = " (manual)"
	}
	return fmt.Sprintf("move %s of C(%s) into new element <%s> keyed by {%s}: saves %d value(s)%s",
		s.FD.RHS, s.FD.Class, s.NewElement, joinRels(s.FD.LHS), s.SavedValues, tag)
}

func joinRels(rs []schema.RelPath) string {
	parts := make([]string, len(rs))
	for i, r := range rs {
		parts[i] = string(r)
	}
	return strings.Join(parts, ", ")
}

// Suggest derives refinement suggestions from a discovery result,
// ranked by saved values (descending). Only FDs that witness at
// least one redundant value produce suggestions.
func Suggest(h *relation.Hierarchy, res *core.Result) []Suggestion {
	var out []Suggestion
	for _, r := range res.Redundancies {
		if r.RedundantValues == 0 {
			continue
		}
		s := Suggestion{
			FD:          r.FD,
			NewElement:  newElementLabel(r.FD),
			SavedValues: r.RedundantValues,
			Applicable:  applicable(h, r.FD),
		}
		out = append(out, s)
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].SavedValues > out[j].SavedValues })
	return out
}

// newElementLabel derives a label like "book_title_by_ISBN".
func newElementLabel(fd core.FD) string {
	clean := func(p schema.RelPath) string {
		s := strings.TrimPrefix(string(p), "./")
		s = strings.ReplaceAll(s, "../", "up_")
		s = strings.ReplaceAll(s, "/", "_")
		if s == "." {
			s = "value"
		}
		return s
	}
	keys := make([]string, len(fd.LHS))
	for i, p := range fd.LHS {
		keys[i] = clean(p)
	}
	return fmt.Sprintf("%s_%s_by_%s", fd.Class.Last(), clean(fd.RHS), strings.Join(keys, "_"))
}

// applicable reports whether Apply supports the FD.
func applicable(h *relation.Hierarchy, fd core.FD) bool {
	if fd.Inter {
		return false
	}
	rel := h.ByPivot(fd.Class)
	if rel == nil {
		return false
	}
	check := func(p schema.RelPath, rhs bool) bool {
		i := rel.AttrIndex(p)
		if i < 0 {
			return false
		}
		switch rel.Attrs[i].Kind {
		case relation.Leaf:
			return p != "." // moving the pivot's own value is not meaningful
		case relation.SetValue:
			return rhs // a set RHS moves whole member collections
		default:
			return false
		}
	}
	for _, p := range fd.LHS {
		if !check(p, false) {
			return false
		}
	}
	return check(fd.RHS, true)
}

// Apply performs the repair on a copy of nothing — it mutates the
// given tree in place (callers wanting the original should reparse)
// and returns the number of RHS occurrences removed. The new lookup
// element is appended under the document root; original tuples keep
// their LHS elements as the join key. The mutated tree no longer
// conforms to the original schema; re-infer to continue working with
// it.
func Apply(t *datatree.Tree, h *relation.Hierarchy, fd core.FD) (int, error) {
	rel := h.ByPivot(fd.Class)
	if rel == nil {
		return 0, fmt.Errorf("refine: unknown tuple class %s", fd.Class)
	}
	if !applicable(h, fd) {
		return 0, fmt.Errorf("refine: Apply does not support %s (inter-relation or complex paths)", fd)
	}
	lhsIdx := make([]int, len(fd.LHS))
	for i, p := range fd.LHS {
		lhsIdx[i] = rel.AttrIndex(p)
	}
	rhsIdx := rel.AttrIndex(fd.RHS)
	rhsIsSet := rel.Attrs[rhsIdx].Kind == relation.SetValue

	type entry struct {
		lhsNodes []*datatree.Node // representative LHS leaves
		rhsNodes []*datatree.Node // representative RHS subtree(s)
	}
	seen := map[string]*entry{}
	var order []string
	removed := 0

	rhsSteps := attrSteps(fd.RHS)
	for ti := 0; ti < rel.NRows(); ti++ {
		pivot := rel.Node(ti)
		sig, ok := signature(rel, ti, lhsIdx)
		if !ok {
			continue // a missing LHS value: tuple keeps its RHS
		}
		rhsNodes := collectRHS(pivot, rhsSteps, rhsIsSet)
		if len(rhsNodes) == 0 {
			continue
		}
		e := seen[sig]
		if e == nil {
			// First occurrence: record representatives, keep data.
			e = &entry{}
			for _, p := range fd.LHS {
				if n := descendSteps(pivot, attrSteps(p)); n != nil {
					e.lhsNodes = append(e.lhsNodes, n)
				}
			}
			e.rhsNodes = rhsNodes
			seen[sig] = e
			order = append(order, sig)
		}
		// Every occurrence loses its RHS nodes (the lookup element
		// will hold the single authoritative copy).
		parentOf := rhsNodes[0].Parent
		removed += removeNodes(parentOf, rhsNodes)
	}

	// Build the lookup element.
	label := newElementLabel(fd)
	for _, sig := range order {
		e := seen[sig]
		lookup := t.Root.AddChild(label)
		for _, n := range e.lhsNodes {
			lookup.Children = append(lookup.Children, cloneNode(n))
		}
		for _, n := range e.rhsNodes {
			lookup.Children = append(lookup.Children, cloneNode(n))
		}
	}
	t.Renumber()
	return removed, nil
}

// attrSteps splits a "./a/b" attribute path into steps.
func attrSteps(p schema.RelPath) []string {
	s := strings.TrimPrefix(string(p), "./")
	if s == "." || s == "" {
		return nil
	}
	return strings.Split(s, "/")
}

func descendSteps(n *datatree.Node, steps []string) *datatree.Node {
	for _, s := range steps {
		n = n.Child(s)
		if n == nil {
			return nil
		}
	}
	return n
}

// collectRHS gathers the RHS node(s) under the pivot: a single leaf,
// or every member of a set element.
func collectRHS(pivot *datatree.Node, steps []string, isSet bool) []*datatree.Node {
	if !isSet {
		if n := descendSteps(pivot, steps); n != nil {
			return []*datatree.Node{n}
		}
		return nil
	}
	// Set members share the last step's label under the parent of the
	// final step.
	parent := pivot
	for _, s := range steps[:len(steps)-1] {
		parent = parent.Child(s)
		if parent == nil {
			return nil
		}
	}
	return parent.ChildrenLabeled(steps[len(steps)-1])
}

// signature encodes the tuple's LHS codes; ok is false when any is
// missing.
func signature(rel *relation.Relation, ti int, lhsIdx []int) (string, bool) {
	var b strings.Builder
	for _, ai := range lhsIdx {
		code := rel.Cols[ai][ti]
		if relation.IsNull(code) {
			return "", false
		}
		fmt.Fprintf(&b, "%d|", code)
	}
	return b.String(), true
}

// removeNodes deletes the given children from their parent, returning
// how many were removed.
func removeNodes(parent *datatree.Node, nodes []*datatree.Node) int {
	if parent == nil {
		return 0
	}
	drop := make(map[*datatree.Node]bool, len(nodes))
	for _, n := range nodes {
		drop[n] = true
	}
	kept := parent.Children[:0]
	removed := 0
	for _, c := range parent.Children {
		if drop[c] {
			removed++
			continue
		}
		kept = append(kept, c)
	}
	parent.Children = kept
	return removed
}

// cloneNode deep-copies a subtree (keys are reassigned by the
// caller's Renumber).
func cloneNode(n *datatree.Node) *datatree.Node {
	cp := &datatree.Node{Label: n.Label, Value: n.Value, HasValue: n.HasValue}
	for _, c := range n.Children {
		cc := cloneNode(c)
		cc.Parent = cp
		cp.Children = append(cp.Children, cc)
	}
	return cp
}
