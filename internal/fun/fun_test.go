package fun

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"discoverxfd/internal/core"
	"discoverxfd/internal/datatree"
	"discoverxfd/internal/depminer"
	"discoverxfd/internal/relation"
	"discoverxfd/internal/schema"
)

func buildRelation(t *testing.T, seed int64, rows, attrs, domain int) *relation.Relation {
	t.Helper()
	r := rand.New(rand.NewSource(seed))
	text := "db: Rcd\n  row: SetOf Rcd\n"
	for a := 0; a < attrs; a++ {
		text += fmt.Sprintf("    a%d: str\n", a)
	}
	s := schema.MustParse(text)
	root := &datatree.Node{Label: "db"}
	for i := 0; i < rows; i++ {
		row := root.AddChild("row")
		for a := 0; a < attrs; a++ {
			if r.Intn(10) == 0 {
				continue
			}
			row.AddLeaf(fmt.Sprintf("a%d", a), fmt.Sprintf("v%d", r.Intn(domain)))
		}
	}
	tree := datatree.NewTree(root)
	h, err := relation.Build(tree, s, relation.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return h.ByPivot("/db/row")
}

func render(fds []core.FD, keys []core.Key) []string {
	var out []string
	for _, f := range fds {
		out = append(out, f.String())
	}
	for _, k := range keys {
		out = append(out, k.String())
	}
	sort.Strings(out)
	return out
}

func equal(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestFUNMatchesDepMiner is the three-way oracle closure: FUN's
// cardinality cover must equal Dep-Miner's agree-set cover on random
// relations with nulls (Dep-Miner is itself checked against the TANE
// lattice, so all three coincide).
func TestFUNMatchesDepMiner(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rel := buildRelation(t, seed, 4+int(seed)%18, 3+int(seed)%3, 2+int(seed)%3)
			fn, err := Discover(rel)
			if err != nil {
				t.Fatal(err)
			}
			dm, err := depminer.Discover(rel)
			if err != nil {
				t.Fatal(err)
			}
			got := render(fn.FDs, fn.Keys)
			want := render(dm.FDs, dm.Keys)
			if !equal(got, want) {
				t.Errorf("covers differ\nfun:      %v\ndepminer: %v", got, want)
			}
		})
	}
}

func TestFUNSmallExample(t *testing.T) {
	root := &datatree.Node{Label: "db"}
	for _, vals := range [][3]string{{"1", "x", "p"}, {"1", "x", "q"}, {"2", "y", "p"}} {
		row := root.AddChild("row")
		row.AddLeaf("a0", vals[0])
		row.AddLeaf("a1", vals[1])
		row.AddLeaf("a2", vals[2])
	}
	tree := datatree.NewTree(root)
	s := schema.MustParse("db: Rcd\n  row: SetOf Rcd\n    a0: str\n    a1: str\n    a2: str")
	h, err := relation.Build(tree, s, relation.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Discover(h.ByPivot("/db/row"))
	if err != nil {
		t.Fatal(err)
	}
	out := render(res.FDs, res.Keys)
	found := 0
	for _, want := range []string{
		"{./a0} -> ./a1 w.r.t. C(/db/row)",
		"{./a1} -> ./a0 w.r.t. C(/db/row)",
		"{./a0, ./a2} KEY of C(/db/row)",
		"{./a1, ./a2} KEY of C(/db/row)",
	} {
		for _, g := range out {
			if g == want {
				found++
			}
		}
	}
	if found != 4 {
		t.Fatalf("expected cover missing entries: %v", out)
	}
	if res.FreeSets == 0 {
		t.Fatal("free-set instrumentation missing")
	}
}

func TestFUNWidthGuard(t *testing.T) {
	rel := &relation.Relation{Pivot: "/x"}
	for i := 0; i < 70; i++ {
		rel.Attrs = append(rel.Attrs, relation.Attr{Rel: schema.RelPath(fmt.Sprintf("./a%d", i))})
		rel.Cols = append(rel.Cols, nil)
	}
	if _, err := Discover(rel); err == nil {
		t.Fatal("width guard missing")
	}
}
