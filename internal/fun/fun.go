// Package fun implements a FUN-style relational FD discoverer
// (Novelli & Cicchetti), the third of the three systems the paper
// cites alongside TANE and Dep-Miner. Where TANE compares striped
// partitions and Dep-Miner inverts agree sets, FUN works purely from
// *cardinalities* — the number of distinct value combinations of an
// attribute set — over the lattice of *free sets*:
//
//   - X → a holds  iff  card(X ∪ {a}) = card(X);
//   - X is free    iff  card(X) > card(X \ {b}) for every b ∈ X
//     (a non-free X has a bijective proper subset and can never be a
//     minimal LHS);
//   - X → a is minimal iff it holds, X is free, and it fails for
//     every maximal proper subset of X (monotonicity covers the rest);
//   - X is a key   iff  card(X) = number of tuples.
//
// Missing values carry unique negative codes, so they count as
// pairwise-distinct combinations — the same strong-satisfaction
// semantics the partition machinery uses. Like internal/depminer,
// the package is an independent oracle: three structurally different
// algorithms must produce the same minimal cover on any relation.
package fun

import (
	"fmt"
	"math/bits"
	"sort"
	"strconv"
	"strings"

	"discoverxfd/internal/core"
	"discoverxfd/internal/relation"
)

type attrSet uint64

func (s attrSet) has(i int) bool { return s&(1<<uint(i)) != 0 }
func (s attrSet) size() int      { return bits.OnesCount64(uint64(s)) }

// Result is the minimal cover FUN computes for one relation.
type Result struct {
	// FDs are the minimal satisfied FDs, including constants (empty
	// LHS) and FDs with key LHSs; callers filter by policy.
	FDs []core.FD
	// Keys are the minimal keys.
	Keys []core.Key
	// FreeSets counts the free sets visited (instrumentation).
	FreeSets int
}

// Discover runs the cardinality algorithm on a single relation.
func Discover(rel *relation.Relation) (*Result, error) {
	m := rel.NAttrs()
	if m > 64 {
		return nil, fmt.Errorf("fun: relation %s has %d attributes; at most 64 are supported", rel.Pivot, m)
	}
	n := rel.NRows()
	res := &Result{}
	if n < 2 {
		return res, nil
	}

	cards := map[attrSet]int{0: min(n, 1)}
	if n > 0 {
		cards[0] = 1
	}
	card := func(x attrSet) int {
		if c, ok := cards[x]; ok {
			return c
		}
		seen := make(map[string]bool, n)
		var sb strings.Builder
		for t := 0; t < n; t++ {
			sb.Reset()
			for a := 0; a < m; a++ {
				if x.has(a) {
					sb.WriteString(strconv.FormatInt(rel.Cols[a][t], 10))
					sb.WriteByte('|')
				}
			}
			seen[sb.String()] = true
		}
		cards[x] = len(seen)
		return len(seen)
	}

	isFree := func(x attrSet) bool {
		cx := card(x)
		for a := 0; a < m; a++ {
			if x.has(a) && card(x&^(1<<uint(a))) == cx {
				return false
			}
		}
		return true
	}
	holds := func(x attrSet, a int) bool {
		return card(x|1<<uint(a)) == card(x)
	}

	// Level-wise enumeration of free sets. Supersets of keys are also
	// pruned: a key's supersets are never free (their cardinality
	// cannot exceed n = card(key)).
	level := []attrSet{0}
	var keys []attrSet
	seenSet := map[attrSet]bool{0: true}
	for len(level) > 0 {
		var next []attrSet
		for _, x := range level {
			res.FreeSets++
			// Minimal FDs with LHS x.
			for a := 0; a < m; a++ {
				if x.has(a) || !holds(x, a) {
					continue
				}
				minimal := true
				for b := 0; b < m && minimal; b++ {
					if x.has(b) && holds(x&^(1<<uint(b)), a) {
						minimal = false
					}
				}
				if minimal {
					res.FDs = append(res.FDs, mkFD(rel, x, a))
				}
			}
			if card(x) == n && x != 0 {
				keys = append(keys, x)
				continue // supersets of a key are not free
			}
			// Expand to free supersets.
			for a := x.maxBit() + 1; a < m; a++ {
				y := x | 1<<uint(a)
				if seenSet[y] {
					continue
				}
				seenSet[y] = true
				if isFree(y) {
					next = append(next, y)
				}
			}
		}
		level = next
	}

	// Minimal keys only (free-set pruning already avoids most
	// supersets; chains through non-free paths can still slip in).
	sort.Slice(keys, func(i, j int) bool { return keys[i].size() < keys[j].size() })
	var minKeys []attrSet
	for _, k := range keys {
		dominated := false
		for _, t := range minKeys {
			if k&t == t {
				dominated = true
				break
			}
		}
		if !dominated {
			minKeys = append(minKeys, k)
		}
	}
	for _, k := range minKeys {
		res.Keys = append(res.Keys, mkKey(rel, k))
	}
	return res, nil
}

func (s attrSet) maxBit() int {
	if s == 0 {
		return -1
	}
	return 63 - bits.LeadingZeros64(uint64(s))
}

func mkFD(rel *relation.Relation, lhs attrSet, rhs int) core.FD {
	fd := core.FD{Class: rel.Pivot, RHS: rel.Attrs[rhs].Rel}
	for a := 0; a < rel.NAttrs(); a++ {
		if lhs.has(a) {
			fd.LHS = append(fd.LHS, rel.Attrs[a].Rel)
		}
	}
	sort.Slice(fd.LHS, func(i, j int) bool { return fd.LHS[i] < fd.LHS[j] })
	return fd
}

func mkKey(rel *relation.Relation, lhs attrSet) core.Key {
	k := core.Key{Class: rel.Pivot}
	for a := 0; a < rel.NAttrs(); a++ {
		if lhs.has(a) {
			k.LHS = append(k.LHS, rel.Attrs[a].Rel)
		}
	}
	sort.Slice(k.LHS, func(i, j int) bool { return k.LHS[i] < k.LHS[j] })
	return k
}
