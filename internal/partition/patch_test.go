package partition

import (
	"math/rand"
	"testing"
)

// patchRef applies the edits naively and rebuilds from scratch — the
// reference Patch must match.
func requirePatchEqual(t *testing.T, old []int64, p *Partition, codes []int64, touched []int32) {
	t.Helper()
	got := p.Patch(codes, touched)
	want := FromCodes(codes)
	if !got.Equal(want) {
		t.Fatalf("Patch mismatch\nold:     %v\nnew:     %v\ntouched: %v\ngot:     %v\nwant:    %v",
			old, codes, touched, got.Groups, want.Groups)
	}
	if got.NRows != len(codes) {
		t.Fatalf("Patch NRows = %d, want %d", got.NRows, len(codes))
	}
}

func TestPatchValueChanges(t *testing.T) {
	old := []int64{1, 2, 1, 3, 2, 1, 4}
	p := FromCodes(old)
	for _, tc := range []struct {
		name   string
		mutate func(c []int64) []int32
	}{
		{"join existing group", func(c []int64) []int32 { c[3] = 1; return []int32{3} }},
		{"leave group to singleton", func(c []int64) []int32 { c[0] = 9; return []int32{0} }},
		{"shrink group to singleton", func(c []int64) []int32 { c[1] = 9; return []int32{1} }},
		{"singleton joins singleton", func(c []int64) []int32 { c[6] = 3; return []int32{6} }},
		{"swap two groups", func(c []int64) []int32 { c[0], c[1] = 2, 1; return []int32{0, 1} }},
		{"null stays singleton", func(c []int64) []int32 { c[2] = -3; return []int32{2} }},
		{"no-op listed as touched", func(c []int64) []int32 { return []int32{4} }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			codes := append([]int64(nil), old...)
			touched := tc.mutate(codes)
			requirePatchEqual(t, old, p, codes, touched)
		})
	}
}

func TestPatchResize(t *testing.T) {
	old := []int64{1, 2, 1, 3, 2, 1}
	p := FromCodes(old)

	// Append two rows, one joining a group, one fresh.
	grown := append(append([]int64(nil), old...), 2, 7)
	requirePatchEqual(t, old, p, grown, []int32{6, 7})

	// Swap-delete: remove row 1 by moving the last row into its slot
	// and truncating.
	shrunk := append([]int64(nil), old...)
	shrunk[1] = shrunk[5]
	shrunk = shrunk[:5]
	requirePatchEqual(t, old, p, shrunk, []int32{1})

	// Truncation only (delete the last row): nothing below the new
	// length is touched.
	requirePatchEqual(t, old, p, old[:5], nil)

	// Shrink to empty.
	requirePatchEqual(t, old, p, nil, nil)
}

func TestPatchNoTouchSharesGroups(t *testing.T) {
	old := []int64{1, 1, 2, 2, 3}
	p := FromCodes(old)
	if got := p.Patch(old, nil); got != p {
		t.Fatalf("Patch with no edits should return the receiver")
	}
	// A disjoint edit must share the untouched group's backing slice.
	codes := append([]int64(nil), old...)
	codes[4] = 9
	got := p.Patch(codes, []int32{4})
	if len(got.Groups) != 2 || len(p.Groups) != 2 {
		t.Fatalf("unexpected groups: got %v, prev %v", got.Groups, p.Groups)
	}
	if &got.Groups[0][0] != &p.Groups[0][0] || &got.Groups[1][0] != &p.Groups[1][0] {
		t.Fatalf("untouched groups were copied instead of shared")
	}
}

// TestPatchSpliceIntoEmpty grows a partition from zero rows: the
// degenerate base every fresh document update starts from.
func TestPatchSpliceIntoEmpty(t *testing.T) {
	p := FromCodes(nil)
	if p.NRows != 0 {
		t.Fatalf("empty partition NRows = %d", p.NRows)
	}
	// Splice a first batch of rows into the empty partition.
	codes := []int64{5, 5, 7}
	requirePatchEqual(t, nil, p, codes, []int32{0, 1, 2})

	// And the no-op splice: empty in, empty out, receiver shared.
	if got := p.Patch(nil, nil); got != p {
		t.Fatal("empty-to-empty patch should return the receiver")
	}
}

// TestPatchEmptiesClass drives every member out of one equivalence
// class in a single splice, so the class must vanish from the result
// (a class with zero rows would corrupt group bookkeeping downstream).
func TestPatchEmptiesClass(t *testing.T) {
	old := []int64{1, 1, 2, 2, 2, 3, 3}
	p := FromCodes(old)

	// Move both members of class 1 into class 3: class 1 is emptied.
	codes := append([]int64(nil), old...)
	codes[0], codes[1] = 3, 3
	requirePatchEqual(t, old, p, codes, []int32{0, 1})
	got := p.Patch(codes, []int32{0, 1})
	if len(got.Groups) != 2 {
		t.Fatalf("emptied class still present: groups = %v", got.Groups)
	}

	// Empty a class by deletion: truncate away the whole tail class.
	requirePatchEqual(t, old, p, old[:5], nil)
	if got := p.Patch(old[:5], nil); len(got.Groups) != 2 {
		t.Fatalf("truncated class still present: groups = %v", got.Groups)
	}

	// Combined: splice out the middle class via swap-deletes, emptying
	// it while rows move under the new length.
	shrunk := append([]int64(nil), old...)
	shrunk[2], shrunk[3] = shrunk[6], shrunk[5] // move tail class 3 rows down
	shrunk = shrunk[:5]                         // rows {1,1,3,3,2}... class 2 shrinks to one row
	requirePatchEqual(t, old, p, shrunk, []int32{2, 3})
}

// TestPatchAfterResize patches immediately on top of a resized
// partition — the differential path must keep composing after a
// length change, not just from a cold FromCodes base.
func TestPatchAfterResize(t *testing.T) {
	base := []int64{1, 2, 1}
	p := FromCodes(base)

	grown := []int64{1, 2, 1, 2, 4}
	p2 := p.Patch(grown, []int32{3, 4})
	requirePatchEqual(t, base, p, grown, []int32{3, 4})

	// Value change right after the append, against the patched result.
	changed := append([]int64(nil), grown...)
	changed[0] = 4
	requirePatchEqual(t, grown, p2, changed, []int32{0})

	// Shrink right after the append.
	requirePatchEqual(t, grown, p2, grown[:2], nil)

	// And a splice after a shrink.
	p3 := p2.Patch(grown[:2], nil)
	regrown := []int64{1, 2, 9, 9}
	requirePatchEqual(t, grown[:2], p3, regrown, []int32{2, 3})
}

// TestPatchChainMatchesColdRebuild runs a deterministic multi-step
// update chain differentially and checks every intermediate (and the
// final state) against a cold FromCodes rebuild — the incremental
// discovery invariant in miniature.
func TestPatchChainMatchesColdRebuild(t *testing.T) {
	steps := [][]struct {
		row  int32
		code int64
	}{
		{{0, 2}},                 // merge into class 2
		{{3, 9}, {4, 9}},         // two rows leave for a fresh class
		{{1, -2}},                // a value goes null (singleton)
		{{2, 7}, {0, 7}, {5, 7}}, // build a new class from three others
	}
	codes := []int64{1, 2, 1, 3, 3, 2}
	p := FromCodes(codes)
	for i, step := range steps {
		next := append([]int64(nil), codes...)
		var touched []int32
		for _, e := range step {
			next[e.row] = e.code
			touched = append(touched, e.row)
		}
		requirePatchEqual(t, codes, p, next, touched)
		p = p.Patch(next, touched)
		cold := FromCodes(next)
		if !p.Equal(cold) {
			t.Fatalf("step %d: differential state diverged from cold rebuild:\ngot  %v\nwant %v",
				i, p.Groups, cold.Groups)
		}
		codes = next
	}
}

// TestPatchRandomized drives long random edit sequences — value
// changes, appends, swap-deletes — through Patch, checking the result
// against a from-scratch rebuild at every step.
func TestPatchRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(60)
		domain := int64(1 + rng.Intn(8))
		codes := make([]int64, n)
		for i := range codes {
			if rng.Intn(10) == 0 {
				codes[i] = -int64(i) - 1 // null
			} else {
				codes[i] = 1 + rng.Int63n(domain)
			}
		}
		p := FromCodes(codes)
		for step := 0; step < 20; step++ {
			old := append([]int64(nil), codes...)
			var touched []int32
			switch k := rng.Intn(3); {
			case k == 0 && len(codes) > 0: // value changes
				edits := 1 + rng.Intn(3)
				for e := 0; e < edits; e++ {
					i := rng.Intn(len(codes))
					codes[i] = 1 + rng.Int63n(domain)
					touched = append(touched, int32(i))
				}
			case k == 1: // append
				codes = append(codes, 1+rng.Int63n(domain))
				touched = append(touched, int32(len(codes)-1))
			case k == 2 && len(codes) > 0: // swap-delete
				i := rng.Intn(len(codes))
				last := len(codes) - 1
				if i != last {
					c := codes[last]
					if c < 0 {
						c = -int64(i) - 1 // nulls renumber to their new row
					}
					codes[i] = c
					touched = append(touched, int32(i))
				}
				codes = codes[:last]
			}
			requirePatchEqual(t, old, p, codes, touched)
			p = p.Patch(codes, touched)
		}
	}
}
