package partition

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestFromCodesBasic(t *testing.T) {
	// codes: a a b a c c -> groups {0,1,3}, {4,5}; b is a singleton.
	p := FromCodes([]int64{1, 1, 2, 1, 3, 3})
	if p.NRows != 6 || p.Size() != 2 {
		t.Fatalf("NRows=%d Size=%d", p.NRows, p.Size())
	}
	want := [][]int32{{0, 1, 3}, {4, 5}}
	if !reflect.DeepEqual(p.Groups, want) {
		t.Fatalf("Groups = %v, want %v", p.Groups, want)
	}
	if p.Card() != 5 || p.Error() != 3 || p.MaxGroupSize() != 3 || p.IsKey() {
		t.Fatalf("Card=%d Error=%d Max=%d IsKey=%v", p.Card(), p.Error(), p.MaxGroupSize(), p.IsKey())
	}
}

func TestUniqueNegativesAreSingletons(t *testing.T) {
	// Unique negative codes realize strong-satisfaction nulls: every
	// null row is its own singleton and vanishes from the striped
	// partition.
	p := FromCodes([]int64{-1, -2, -3, 5, 5})
	if p.Size() != 1 || p.Groups[0][0] != 3 {
		t.Fatalf("nulls should strip away: %v", p.Groups)
	}
}

func TestKeyPartition(t *testing.T) {
	p := FromCodes([]int64{4, 2, 9, 7})
	if !p.IsKey() || p.Error() != 0 || p.MaxGroupSize() != 0 {
		t.Fatalf("all-distinct column should be a key partition")
	}
}

func TestSingle(t *testing.T) {
	p := Single(4)
	if p.Size() != 1 || p.Card() != 4 || p.Error() != 3 {
		t.Fatalf("Single(4) wrong: %+v", p)
	}
	if !Single(1).IsKey() || !Single(0).IsKey() {
		t.Fatal("Single of 0/1 rows should be a (vacuous) key")
	}
}

func TestProductMatchesDirectGrouping(t *testing.T) {
	a := []int64{1, 1, 2, 2, 1, 1}
	b := []int64{7, 8, 7, 7, 7, 8}
	pa, pb := FromCodes(a), FromCodes(b)
	prod := pa.Product(pb, NewScratch(6))
	// Direct grouping by the pair (a,b).
	pair := make([]int64, len(a))
	for i := range a {
		pair[i] = a[i]*100 + b[i]
	}
	want := FromCodes(pair)
	if !prod.Equal(want) {
		t.Fatalf("product %v != direct %v", prod.Groups, want.Groups)
	}
}

func TestRefines(t *testing.T) {
	fine := FromCodes([]int64{1, 1, 2, 2, 3, 3})
	coarse := FromCodes([]int64{1, 1, 1, 1, 2, 2})
	if !fine.Refines(coarse) {
		t.Fatal("fine should refine coarse")
	}
	if coarse.Refines(fine) {
		t.Fatal("coarse should not refine fine")
	}
	if !fine.Refines(fine) {
		t.Fatal("a partition refines itself")
	}
}

func TestGroupIDsAndSeparates(t *testing.T) {
	p := FromCodes([]int64{1, 1, 2, 3, 3})
	ids := p.GroupIDs()
	if ids[2] != -1 {
		t.Fatal("singleton rows should have id -1")
	}
	if Separates(ids, 0, 1) || !Separates(ids, 0, 3) || !Separates(ids, 0, 2) {
		t.Fatal("Separates wrong")
	}
}

// randomCodes builds a random column with a small domain so groups
// are common.
func randomCodes(r *rand.Rand, n, domain int) []int64 {
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(r.Intn(domain))
	}
	return out
}

// TestProductProperties property-checks the algebra the discovery
// algorithms rely on:
//  1. Π_X·Π_Y equals direct grouping by the value pair;
//  2. the product refines both operands;
//  3. e(Π_X) == e(Π_X·Π_Y) iff Π_X refines Π_Y (Lemma 2's FD test);
//  4. the product is commutative.
func TestProductProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(40)
		x := randomCodes(r, n, 1+r.Intn(6))
		y := randomCodes(r, n, 1+r.Intn(6))
		px, py := FromCodes(x), FromCodes(y)
		sc := NewScratch(n)
		prod := px.Product(py, sc)

		pair := make([]int64, n)
		for i := range pair {
			pair[i] = x[i]*1000 + y[i]
		}
		direct := FromCodes(pair)
		if !prod.Equal(direct) {
			return false
		}
		if !prod.Refines(px) || !prod.Refines(py) {
			return false
		}
		if (px.Error() == prod.Error()) != px.Refines(py) {
			return false
		}
		prod2 := py.Product(px, sc)
		return prod.Equal(prod2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// TestScratchReuse verifies that reusing one Scratch across many
// products does not corrupt results.
func TestScratchReuse(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	sc := NewScratch(50)
	for i := 0; i < 50; i++ {
		x := randomCodes(r, 50, 4)
		y := randomCodes(r, 50, 4)
		px, py := FromCodes(x), FromCodes(y)
		got := px.Product(py, sc)
		want := px.Product(py, NewScratch(50))
		if !got.Equal(want) {
			t.Fatalf("scratch reuse corrupted product at iteration %d", i)
		}
	}
}

func TestProductPanicsOnMismatchedRows(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched NRows")
		}
	}()
	FromCodes([]int64{1, 1}).Product(FromCodes([]int64{1, 1, 1}), nil)
}

func TestEqualEdgeCases(t *testing.T) {
	a := FromCodes([]int64{1, 1, 2})
	b := FromCodes([]int64{3, 3, 9})
	if !a.Equal(b) {
		t.Fatal("same grouping with different codes must be Equal")
	}
	c := FromCodes([]int64{1, 2, 2})
	if a.Equal(c) {
		t.Fatal("different groupings must not be Equal")
	}
}
