package partition

// Patching is the incremental-update counterpart of the build paths in
// this package (Section 4.2's stripped partitions are what makes this
// cheap): when a handful of rows of a column change code, the new
// column partition is obtained by splicing the touched rows out of
// their old equivalence classes and re-merging them under their new
// codes, instead of rebuilding from all n rows. Groups the edit does
// not reach are *shared* with the previous partition — sound because
// partitions are immutable after construction (the partimmut analyzer
// enforces it), which is the same property that lets the engine's warm
// layer hand one partition to many runs.

// Patch returns the partition of the updated column codes, given that
// the receiver is the partition of a previous version of the column
// in which every row listed in touched (and no other row below
// min(p.NRows, len(codes))) may have changed its code. Rows appended
// beyond p.NRows must be listed in touched; rows removed by
// truncating the column below p.NRows are dropped automatically.
//
// The result is a fresh immutable Partition equal to
// FromCodes(codes); groups that contain neither a touched row nor a
// row sharing a touched row's new code are shared (not copied) with
// the receiver. Cost is O(n) for the single code scan plus work
// proportional to the affected groups — the scan has a trivial
// constant next to a hash build, which is where the incremental-update
// speedup comes from.
func (p *Partition) Patch(codes []int64, touched []int32) *Partition {
	n := len(codes)
	if len(touched) == 0 && n == p.NRows {
		return p
	}
	bound := n
	if p.NRows > bound {
		bound = p.NRows
	}
	affected := make([]bool, bound)
	// rebuild collects, per new code of a touched row, every row of the
	// updated column that carries the code; order holds first-touch
	// order so no map iteration reaches the output.
	rebuild := make(map[int64]int)
	var order [][]int32
	for _, r := range touched {
		if int(r) >= bound {
			continue
		}
		affected[r] = true
		if int(r) < n {
			if _, ok := rebuild[codes[r]]; !ok {
				rebuild[codes[r]] = len(order)
				order = append(order, nil)
			}
		}
	}
	if len(rebuild) > 0 {
		for i, c := range codes {
			if gi, ok := rebuild[c]; ok {
				order[gi] = append(order[gi], int32(i))
				affected[i] = true
			}
		}
	}
	out := &Partition{NRows: n, Groups: make([][]int32, 0, len(p.Groups)+len(order))}
	out.spliceFrom(p, affected, n)
	out.mergeRebuilt(order)
	sortGroups(out.Groups)
	return out
}

// spliceFrom carries the previous partition's groups into the
// partition under construction: a group no row of which is affected
// (or out of range) is shared as-is; otherwise the affected and
// out-of-range rows are spliced out and the remainder kept if it still
// has two or more rows. In-place patch constructor: out is the
// unpublished partition Patch is building, so writing its fields
// cannot race with readers (partimmut allowlists this method by name).
func (out *Partition) spliceFrom(prev *Partition, affected []bool, n int) {
	for _, g := range prev.Groups {
		clean := true
		for _, row := range g {
			if int(row) >= n || affected[row] {
				clean = false
				break
			}
		}
		if clean {
			out.Groups = append(out.Groups, g)
			continue
		}
		var kept []int32
		for _, row := range g {
			if int(row) < n && !affected[row] {
				kept = append(kept, row)
			}
		}
		if len(kept) >= 2 {
			out.Groups = append(out.Groups, kept)
		}
	}
}

// mergeRebuilt appends the re-formed equivalence classes of the
// edit's target codes: each entry lists, in ascending row order,
// every row now sharing one touched row's new code. Singletons are
// dropped (stripped form). In-place patch constructor, allowlisted by
// partimmut like spliceFrom.
func (out *Partition) mergeRebuilt(rebuilt [][]int32) {
	for _, g := range rebuilt {
		if len(g) >= 2 {
			out.Groups = append(out.Groups, g)
		}
	}
}
