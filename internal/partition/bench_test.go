package partition

import (
	"math/rand"
	"testing"
)

func benchCodes(n, domain int) []int64 {
	r := rand.New(rand.NewSource(1))
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(r.Intn(domain))
	}
	return out
}

func BenchmarkFromCodes(b *testing.B) {
	codes := benchCodes(10000, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromCodes(codes)
	}
}

func BenchmarkProduct(b *testing.B) {
	pa := FromCodes(benchCodes(10000, 50))
	pb := FromCodes(benchCodes(10000, 50))
	sc := NewScratch(10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pa.Product(pb, sc)
	}
}

func BenchmarkProductSkewed(b *testing.B) {
	// One huge group against many small ones: the shape set
	// pseudo-attributes produce.
	pa := FromCodes(benchCodes(10000, 2))
	pb := FromCodes(benchCodes(10000, 500))
	sc := NewScratch(10000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pa.Product(pb, sc)
	}
}

func BenchmarkGroupIDs(b *testing.B) {
	p := FromCodes(benchCodes(10000, 100))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.GroupIDs()
	}
}
