package partition

import "sync"

// FromDense builds the partition of a single column whose non-null
// codes are dense in [1, bound). It is the interned fast path of
// FromCodes: two counting passes over slice-indexed buffers replace
// the per-row hash-map lookups, which is where FromCodes spends its
// time on repeated-value columns. Codes < 1 (nulls carry a unique
// negative code per row) always form singletons and are skipped, and
// codes >= bound fall back to FromCodes — a dictionary bound that
// turned out wrong degrades to the slow path rather than corrupting
// the partition.
func FromDense(codes []int64, bound int64) *Partition {
	if bound <= 0 {
		return FromCodes(codes)
	}
	counts := getCounts(int(bound))
	defer putCounts(counts)
	for _, c := range codes {
		if c < 1 {
			continue
		}
		if c >= bound {
			return FromCodes(codes)
		}
		counts[c]++
	}

	// Lay every non-singleton group out in one backing array. next[c]
	// is one past the slot the code's next row goes to (offset by one
	// so 0 keeps meaning "unclaimed"); ranges are claimed at each
	// group's first row, so groups come out already sorted by smallest
	// row and no sort pass is needed.
	total, nGroups := 0, 0
	for _, n := range counts {
		if n >= 2 {
			total += int(n)
			nGroups++
		}
	}
	if total == 0 {
		return &Partition{NRows: len(codes)}
	}
	backing := make([]int32, total)
	next := getCounts(int(bound))
	defer putCounts(next)
	groups := make([][]int32, 0, nGroups)
	claimed := int32(0)
	for row, c := range codes {
		if c < 1 || counts[c] < 2 {
			continue
		}
		if next[c] == 0 {
			next[c] = claimed + 1
			claimed += counts[c]
			groups = append(groups, backing[next[c]-1:claimed:claimed])
		}
		backing[next[c]-1] = int32(row)
		next[c]++
	}
	return &Partition{Groups: groups, NRows: len(codes)}
}

// countsPool recycles the counting buffers of FromDense; dictionary
// bounds repeat across the columns of a relation, so buffers are
// almost always reusable at full size.
var countsPool = sync.Pool{}

func getCounts(n int) []int32 {
	if v := countsPool.Get(); v != nil {
		buf := *v.(*[]int32)
		if cap(buf) >= n {
			buf = buf[:n]
			for i := range buf {
				buf[i] = 0
			}
			return buf
		}
	}
	return make([]int32, n)
}

func putCounts(buf []int32) {
	buf = buf[:0]
	countsPool.Put(&buf)
}

// scratchPool recycles Product scratch space across discovery phases
// and goroutines. Scratches are keyed only by capacity: a scratch for
// a larger relation serves a smaller one.
var scratchPool = sync.Pool{}

// GetScratch returns a pooled Scratch usable for relations with at
// most nRows tuples, allocating one when the pool is empty or too
// small. Return it with PutScratch when done.
func GetScratch(nRows int) *Scratch {
	if v := scratchPool.Get(); v != nil {
		sc := v.(*Scratch)
		if len(sc.t) >= nRows {
			return sc
		}
	}
	return NewScratch(nRows)
}

// PutScratch returns a Scratch to the pool. The scratch must not be
// used after; its row table is already reset by Product's cleanup
// pass.
func PutScratch(sc *Scratch) {
	if sc != nil {
		scratchPool.Put(sc)
	}
}

// MemBytes estimates the heap footprint of the partition: the group
// headers plus the row indices. Used for cache accounting.
func (p *Partition) MemBytes() int64 {
	const sliceHeader = 24
	n := int64(sliceHeader) // Groups header itself
	n += int64(len(p.Groups)) * sliceHeader
	n += int64(p.Card()) * 4
	return n
}
