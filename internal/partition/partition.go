// Package partition implements attribute partitions in their striped
// (stripped) form, the core data structure of the paper's
// partition-based discovery algorithms (Section 4.2, following TANE).
//
// An attribute partition Π_X of an attribute set X over a relation
// groups tuples that share the same values at X. The striped form
// drops singleton groups, which loses no information for refinement
// tests: Π_X ⪯ Π_Y (refinement) holds iff Π_{X∪Y} = Π_X (Lemma 2),
// and with striped partitions that equality can be decided by
// comparing the error measure e(Π) = ‖Π‖ − |Π| (the number of tuples
// in non-singleton groups minus the number of such groups).
package partition

import "slices"

// Partition is a striped attribute partition: only groups with two or
// more tuples are stored. Tuples are identified by their row index in
// the underlying relation.
type Partition struct {
	// Groups holds the non-singleton equivalence classes. Row indices
	// within a group are ascending; groups appear in order of their
	// smallest row.
	Groups [][]int32
	// NRows is the number of tuples in the relation the partition is
	// over (including tuples in dropped singleton groups).
	NRows int
}

// FromCodes builds the partition of a single column: rows with equal
// codes form a group. Codes are arbitrary; in this system missing
// values carry a unique negative code per row, which realizes the
// strong-satisfaction null semantics (nulls differ from everything,
// including each other) by making null rows singletons.
func FromCodes(codes []int64) *Partition {
	first := make(map[int64]int32, len(codes))
	groupOf := make(map[int64]int, len(codes))
	var groups [][]int32
	for i, c := range codes {
		if j, ok := groupOf[c]; ok {
			groups[j] = append(groups[j], int32(i))
			continue
		}
		if f, ok := first[c]; ok {
			groupOf[c] = len(groups)
			groups = append(groups, []int32{f, int32(i)})
			continue
		}
		first[c] = int32(i)
	}
	// Groups were appended in order of their *second* occurrence;
	// normalize to order of smallest row for determinism.
	sortGroups(groups)
	return &Partition{Groups: groups, NRows: len(codes)}
}

func sortGroups(groups [][]int32) {
	// Insertion sort for small counts (usually nearly ordered);
	// comparison sort beyond, to avoid quadratic behaviour on
	// partitions with thousands of groups.
	if len(groups) > 32 {
		// Smallest rows are unique across groups, so the unstable sort
		// is deterministic; SortFunc avoids sort.Slice's reflection.
		slices.SortFunc(groups, func(a, b []int32) int { return int(a[0]) - int(b[0]) })
		return
	}
	for i := 1; i < len(groups); i++ {
		g := groups[i]
		j := i - 1
		for j >= 0 && groups[j][0] > g[0] {
			groups[j+1] = groups[j]
			j--
		}
		groups[j+1] = g
	}
}

// Single returns the partition of the empty attribute set Π_∅: one
// group containing every row (dropped if the relation has fewer than
// two rows).
func Single(nRows int) *Partition {
	if nRows < 2 {
		return &Partition{NRows: nRows}
	}
	g := make([]int32, nRows)
	for i := range g {
		g[i] = int32(i)
	}
	return &Partition{Groups: [][]int32{g}, NRows: nRows}
}

// Size returns the number of stored (non-singleton) groups.
func (p *Partition) Size() int { return len(p.Groups) }

// Card returns ‖Π‖, the number of tuples in stored groups.
func (p *Partition) Card() int {
	n := 0
	for _, g := range p.Groups {
		n += len(g)
	}
	return n
}

// Error returns e(Π) = ‖Π‖ − |Π|, the number of tuples that would
// have to be removed to make the attribute set a key. For striped
// partitions, Π_X = Π_{X∪A} iff e(Π_X) == e(Π_{X∪A}) (since the
// product always refines), which is the FD satisfaction test of
// Lemma 2.
func (p *Partition) Error() int { return p.Card() - len(p.Groups) }

// IsKey reports whether every group is a singleton, i.e. the
// attribute set uniquely identifies each tuple (Figure 8, line 11).
func (p *Partition) IsKey() bool { return len(p.Groups) == 0 }

// MaxGroupSize returns the size of the largest group (0 if none).
func (p *Partition) MaxGroupSize() int {
	m := 0
	for _, g := range p.Groups {
		if len(g) > m {
			m = len(g)
		}
	}
	return m
}

// Scratch is reusable working memory for Product. One Scratch may be
// reused across many Product calls over the same relation; it is not
// safe for concurrent use.
type Scratch struct {
	t []int32 // row -> group index in the left operand, -1 if singleton
	s [][]int32
}

// NewScratch allocates scratch space for relations with nRows tuples.
func NewScratch(nRows int) *Scratch {
	t := make([]int32, nRows)
	for i := range t {
		t[i] = -1
	}
	return &Scratch{t: t}
}

// Product computes the striped partition Π_{X∪Y} from Π_X (receiver)
// and Π_Y using the standard TANE stripped-product algorithm, linear
// in ‖Π_X‖ + ‖Π_Y‖.
func (p *Partition) Product(q *Partition, sc *Scratch) *Partition {
	if p.NRows != q.NRows {
		panic("partition: product of partitions over different relations")
	}
	if sc == nil || len(sc.t) < p.NRows {
		sc = NewScratch(p.NRows)
	}
	t := sc.t
	if cap(sc.s) < len(p.Groups) {
		sc.s = make([][]int32, len(p.Groups))
	}
	s := sc.s[:len(p.Groups)]
	for i := range s {
		s[i] = s[i][:0]
	}
	for i, g := range p.Groups {
		for _, row := range g {
			t[row] = int32(i)
		}
	}
	// All output groups share one backing array: the product's total
	// membership is bounded by min(‖p‖, ‖q‖), so a single allocation
	// replaces one per group and relieves the garbage collector on
	// lattice-heavy workloads.
	backing := make([]int32, 0, min(p.Card(), q.Card()))
	var out [][]int32
	for _, g := range q.Groups {
		for _, row := range g {
			if gi := t[row]; gi >= 0 {
				s[gi] = append(s[gi], row)
			}
		}
		for _, row := range g {
			gi := t[row]
			if gi < 0 {
				continue
			}
			if len(s[gi]) >= 2 {
				start := len(backing)
				backing = append(backing, s[gi]...)
				out = append(out, backing[start:len(backing):len(backing)])
			}
			s[gi] = s[gi][:0]
		}
	}
	for _, g := range p.Groups {
		for _, row := range g {
			t[row] = -1
		}
	}
	sortGroups(out)
	return &Partition{Groups: out, NRows: p.NRows}
}

// GroupIDs returns a row→group lookup: ids[row] is the index of the
// group containing the row, or -1 for rows in (dropped) singleton
// groups. Two rows are separated by the partition iff their ids
// differ or either is -1.
func (p *Partition) GroupIDs() []int32 {
	ids := make([]int32, p.NRows)
	for i := range ids {
		ids[i] = -1
	}
	for gi, g := range p.Groups {
		for _, row := range g {
			ids[row] = int32(gi)
		}
	}
	return ids
}

// Separates reports whether the partition puts rows a and b into
// different equivalence classes, given a GroupIDs lookup.
func Separates(ids []int32, a, b int32) bool {
	return ids[a] < 0 || ids[b] < 0 || ids[a] != ids[b]
}

// Refines reports whether p refines q: whenever two tuples share a
// group in p they share a group in q (Lemma 1). Implemented via
// group-id lookup; O(‖p‖ + ‖q‖ + n).
func (p *Partition) Refines(q *Partition) bool {
	if p.NRows != q.NRows {
		return false
	}
	ids := q.GroupIDs()
	for _, g := range p.Groups {
		first := ids[g[0]]
		if first < 0 {
			return false
		}
		for _, row := range g[1:] {
			if ids[row] != first {
				return false
			}
		}
	}
	return true
}

// Equal reports whether two striped partitions contain the same
// groups (group and row order insensitive).
func (p *Partition) Equal(q *Partition) bool {
	if p.NRows != q.NRows || len(p.Groups) != len(q.Groups) || p.Card() != q.Card() {
		return false
	}
	return p.Refines(q) && q.Refines(p)
}
