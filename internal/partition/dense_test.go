package partition

import (
	"math/rand"
	"testing"
)

// denseCodes generates a random dense-coded column: codes in
// [1, bound), with nullEvery rows carrying a unique negative code.
func denseCodes(r *rand.Rand, n int, bound int64, nullEvery int) []int64 {
	codes := make([]int64, n)
	for i := range codes {
		if nullEvery > 0 && r.Intn(nullEvery) == 0 {
			codes[i] = -int64(i) - 1
			continue
		}
		codes[i] = 1 + r.Int63n(bound-1)
	}
	return codes
}

func TestFromDenseMatchesFromCodes(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	cases := []struct {
		n         int
		bound     int64
		nullEvery int
	}{
		{0, 2, 0}, {1, 2, 0}, {2, 2, 0}, {5, 2, 0},
		{100, 3, 0}, {100, 3, 4}, {1000, 50, 0}, {1000, 50, 7},
		{500, 500, 0}, // all-singleton likely
		{64, 2, 2},
	}
	for _, tc := range cases {
		for rep := 0; rep < 5; rep++ {
			codes := denseCodes(r, tc.n, tc.bound, tc.nullEvery)
			want := FromCodes(codes)
			got := FromDense(codes, tc.bound)
			if !got.Equal(want) {
				t.Fatalf("n=%d bound=%d: FromDense != FromCodes\n got: %v\nwant: %v",
					tc.n, tc.bound, got.Groups, want.Groups)
			}
			// Determinism guarantees beyond set equality: groups ordered
			// by smallest row, rows ascending.
			for gi, g := range got.Groups {
				if wg := want.Groups[gi]; g[0] != wg[0] || len(g) != len(wg) {
					t.Fatalf("group %d ordering differs: got %v want %v", gi, g, wg)
				}
				for i := 1; i < len(g); i++ {
					if g[i-1] >= g[i] {
						t.Fatalf("group %d rows not ascending: %v", gi, g)
					}
				}
			}
		}
	}
}

func TestFromDenseOutOfBoundFallsBack(t *testing.T) {
	codes := []int64{1, 2, 1, 99, 99}
	got := FromDense(codes, 3) // 99 >= bound
	want := FromCodes(codes)
	if !got.Equal(want) {
		t.Fatalf("fallback mismatch: got %v want %v", got.Groups, want.Groups)
	}
	if got := FromDense(codes, 0); !got.Equal(want) {
		t.Fatalf("bound=0 fallback mismatch: got %v", got.Groups)
	}
}

func TestFromDenseAllNull(t *testing.T) {
	codes := []int64{-1, -2, -3}
	p := FromDense(codes, 10)
	if p.Size() != 0 || p.NRows != 3 {
		t.Fatalf("all-null column should have no groups: %+v", p)
	}
}

func TestScratchPoolReuse(t *testing.T) {
	sc := GetScratch(100)
	if len(sc.t) < 100 {
		t.Fatalf("scratch too small: %d", len(sc.t))
	}
	PutScratch(sc)
	sc2 := GetScratch(50)
	// Either a fresh or the pooled scratch; both must be usable.
	p := FromCodes([]int64{1, 1, 2, 2, 3})
	q := FromCodes([]int64{1, 2, 1, 2, 3})
	got := p.Product(q, sc2)
	want := p.Product(q, nil)
	if !got.Equal(want) {
		t.Fatalf("pooled scratch product mismatch: %v vs %v", got.Groups, want.Groups)
	}
	PutScratch(sc2)
	PutScratch(nil) // must not panic
}

func TestMemBytes(t *testing.T) {
	p := FromCodes([]int64{1, 1, 2, 2, 2})
	if p.MemBytes() <= 0 {
		t.Fatal("MemBytes should be positive for a non-empty partition")
	}
	empty := &Partition{NRows: 5}
	if empty.MemBytes() <= 0 {
		t.Fatal("MemBytes should count headers even when empty")
	}
}

func BenchmarkFromCodesRepeated(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	codes := denseCodes(r, 20000, 16, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromCodes(codes)
	}
}

func BenchmarkFromDenseRepeated(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	codes := denseCodes(r, 20000, 16, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FromDense(codes, 16)
	}
}
