package trace

import (
	"bytes"
	"encoding/json"
	"errors"
	"log/slog"
	"strings"
	"testing"
	"time"
)

// fixedClock returns a clock that advances by step per call.
func fixedClock(step time.Duration) func() time.Time {
	t := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	return func() time.Time {
		t = t.Add(step)
		return t
	}
}

func TestNilSafety(t *testing.T) {
	// All package helpers must tolerate a nil tracer.
	Emit(nil, &Event{Kind: KindRunStart})
	if WithRun(nil, "run-1") != nil {
		t.Error("WithRun(nil) should stay nil")
	}
	if Multi() != nil || Multi(nil, nil) != nil {
		t.Error("Multi with no live tracers should collapse to nil")
	}
	Discard.Emit(&Event{Kind: KindLevel})
}

func TestMultiCollapsesAndFansOut(t *testing.T) {
	a, b := NewJSONL(&bytes.Buffer{}), NewJSONL(&bytes.Buffer{})
	if got := Multi(nil, a); got != a {
		t.Errorf("single live tracer should be returned as-is, got %T", got)
	}
	var bufA, bufB bytes.Buffer
	ja, jb := NewJSONL(&bufA), NewJSONL(&bufB)
	m := Multi(ja, nil, jb)
	m.Emit(&Event{Kind: KindRunStart, Run: "run-1"})
	if bufA.Len() == 0 || bufB.Len() == 0 {
		t.Errorf("fan-out missed a backend: %d/%d bytes", bufA.Len(), bufB.Len())
	}
	_ = b
}

func TestWithRunStampsEvents(t *testing.T) {
	var buf bytes.Buffer
	tr := WithRun(NewJSONL(&buf), "run-7")
	tr.Emit(&Event{Kind: KindStageStart, Stage: "plan"})
	var ev Event
	if err := json.Unmarshal(buf.Bytes(), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Run != "run-7" || ev.Stage != "plan" {
		t.Errorf("stamped event = %+v", ev)
	}
}

func TestJSONLDeterministicOrderAndTimestamp(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	j.now = fixedClock(time.Millisecond)
	j.Emit(&Event{Kind: KindRunStart, Run: "run-1"})
	j.Emit(&Event{Kind: KindRunEnd, Run: "run-1", DurationMS: 1.5})
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], `{"event":"run_start"`) {
		t.Errorf("first field must be the kind: %s", lines[0])
	}
	var ev Event
	if err := json.Unmarshal([]byte(lines[0]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Time.IsZero() {
		t.Error("backend must stamp the timestamp")
	}
	if j.Err() != nil {
		t.Errorf("unexpected error: %v", j.Err())
	}
}

// failWriter fails every write after the first.
type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.n++
	if w.n > 1 {
		return 0, errors.New("disk full")
	}
	return len(p), nil
}

func TestJSONLErrorLatches(t *testing.T) {
	j := NewJSONL(&failWriter{})
	j.Emit(&Event{Kind: KindRunStart, Run: "run-1"})
	if j.Err() != nil {
		t.Fatalf("first write should succeed: %v", j.Err())
	}
	j.Emit(&Event{Kind: KindRunEnd, Run: "run-1"})
	first := j.Err()
	if first == nil {
		t.Fatal("second write should latch the error")
	}
	// Later emissions are dropped, the first error is kept.
	j.Emit(&Event{Kind: KindLevel})
	if j.Err() != first {
		t.Errorf("error not latched: %v", j.Err())
	}
}

func TestProgressVerbosityAndThrottle(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(slog.New(slog.NewTextHandler(&buf, nil)), false)
	p.Emit(&Event{Kind: KindLevel, Relation: "/a", Level: 2})
	if buf.Len() != 0 {
		t.Errorf("-v must not log level events: %s", buf.String())
	}
	p.Emit(&Event{Kind: KindStageStart, Run: "run-1", Stage: "traverse"})
	if !strings.Contains(buf.String(), "stage_start") {
		t.Errorf("span events must always log: %s", buf.String())
	}

	buf.Reset()
	pv := NewProgress(slog.New(slog.NewTextHandler(&buf, nil)), true)
	pv.now = fixedClock(time.Millisecond) // well under the throttle
	for i := 0; i < 10; i++ {
		pv.Emit(&Event{Kind: KindLevel, Relation: "/a", Level: i + 1})
	}
	if got := strings.Count(buf.String(), "msg=level"); got != 1 {
		t.Errorf("throttle admitted %d level records, want 1:\n%s", got, buf.String())
	}
	// A different relation has its own throttle window.
	pv.Emit(&Event{Kind: KindTarget, Relation: "/b", Action: "create", Pairs: 3})
	if !strings.Contains(buf.String(), "target") {
		t.Errorf("fresh relation should be admitted:\n%s", buf.String())
	}

	// Past the interval the same relation logs again.
	buf.Reset()
	pt := NewProgress(slog.New(slog.NewTextHandler(&buf, nil)), true)
	pt.now = fixedClock(DefaultThrottle + time.Millisecond)
	pt.Emit(&Event{Kind: KindLevel, Relation: "/a", Level: 1})
	pt.Emit(&Event{Kind: KindLevel, Relation: "/a", Level: 2})
	if got := strings.Count(buf.String(), "msg=level"); got != 2 {
		t.Errorf("interval-spaced events admitted %d times, want 2:\n%s", got, buf.String())
	}
}

func TestProgressSeverity(t *testing.T) {
	var buf bytes.Buffer
	p := NewProgress(slog.New(slog.NewTextHandler(&buf, nil)), false)
	p.Emit(&Event{Kind: KindGovernor, Action: "truncate", Detail: "deadline exceeded"})
	if !strings.Contains(buf.String(), "level=WARN") {
		t.Errorf("truncation should warn: %s", buf.String())
	}
	buf.Reset()
	p.Emit(&Event{Kind: KindRunEnd, Run: "run-1", Err: "boom"})
	if !strings.Contains(buf.String(), "level=ERROR") {
		t.Errorf("failed run should log at error: %s", buf.String())
	}
	buf.Reset()
	p.Emit(&Event{Kind: KindRunEnd, Run: "run-1", Truncated: true, DurationMS: 4})
	if !strings.Contains(buf.String(), "level=WARN") || !strings.Contains(buf.String(), "truncated=true") {
		t.Errorf("truncated run_end should warn with the flag: %s", buf.String())
	}
}

func TestProgressDefaultsToSlogDefault(t *testing.T) {
	p := NewProgress(nil, false)
	if p.log == nil {
		t.Fatal("nil logger should fall back to slog.Default")
	}
}

// validTrace writes a minimal schema-complete run.
func validTrace() string {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	tr := WithRun(j, "run-1")
	tr.Emit(&Event{Kind: KindRunStart, Relations: 2, Tuples: 10})
	for _, s := range Stages {
		tr.Emit(&Event{Kind: KindStageStart, Stage: s})
		if s == "traverse" {
			tr.Emit(&Event{Kind: KindRelationStart, Relation: "/a/b", Tuples: 10, Attrs: 3})
			tr.Emit(&Event{Kind: KindLevel, Relation: "/a/b", Level: 1, Nodes: 3, CacheMisses: 3})
			tr.Emit(&Event{Kind: KindTarget, Relation: "/a/b", Action: "create", Pairs: 4})
			tr.Emit(&Event{Kind: KindGovernor, Action: "worker_spawn", Workers: 2, Detail: "subtree workers"})
			tr.Emit(&Event{Kind: KindRelationEnd, Relation: "/a/b", DurationMS: 0.5})
		}
		tr.Emit(&Event{Kind: KindStageEnd, Stage: s, DurationMS: 1})
	}
	tr.Emit(&Event{Kind: KindRunEnd, DurationMS: 6})
	return buf.String()
}

// partialStageTrace ends a run cleanly but skips the verify stage.
func partialStageTrace() string {
	var buf bytes.Buffer
	tr := WithRun(NewJSONL(&buf), "run-1")
	tr.Emit(&Event{Kind: KindRunStart})
	for _, s := range Stages {
		if s == "verify" {
			continue
		}
		tr.Emit(&Event{Kind: KindStageStart, Stage: s})
		tr.Emit(&Event{Kind: KindStageEnd, Stage: s})
	}
	tr.Emit(&Event{Kind: KindRunEnd})
	return buf.String()
}

func TestValidateJSONLAccepts(t *testing.T) {
	sum, err := ValidateJSONL(strings.NewReader(validTrace()))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Runs != 1 || sum.Events == 0 {
		t.Errorf("summary = %+v", sum)
	}
}

func TestValidateJSONLRejects(t *testing.T) {
	good := validTrace()
	stamp := `"t":"2026-01-01T00:00:00Z"`
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"garbage", "not json\n", "invalid character"},
		{"unknown field", `{"event":"run_start","run":"r","t":"2026-01-01T00:00:00Z","bogus":1}` + "\n", "bogus"},
		{"unknown kind", `{"event":"warp","run":"r",` + stamp + `}` + "\n", "unknown event kind"},
		{"no timestamp", `{"event":"run_start","run":"r"}` + "\n", "without a timestamp"},
		{"no run id", `{"event":"stage_start","stage":"plan",` + stamp + `}` + "\n", "without a run id"},
		{"before run_start", `{"event":"stage_start","run":"r","stage":"plan",` + stamp + `}` + "\n", "before its run_start"},
		{"unknown stage", strings.Replace(good, `"stage":"plan"`, `"stage":"warp"`, 2), "unknown stage"},
		{"missing stage", partialStageTrace(), `without tracing stage "verify"`},
		{"unclosed run", strings.Split(good, "\n")[0] + "\n", "no run_end"},
		{"bad target action", strings.Replace(good, `"action":"create"`, `"action":"zap"`, 1), "target event with action"},
		{"level outside relation", `{"event":"run_start","run":"r",` + stamp + `}` + "\n" +
			`{"event":"level","run":"r","relation":"/x","level":1,` + stamp + `}` + "\n", "outside a relation span"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ValidateJSONL(strings.NewReader(c.in))
			if err == nil {
				t.Fatalf("validator accepted %s", c.name)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestValidateJSONLFailedRunNeedsNoStages(t *testing.T) {
	var buf bytes.Buffer
	tr := WithRun(NewJSONL(&buf), "run-9")
	tr.Emit(&Event{Kind: KindRunStart})
	tr.Emit(&Event{Kind: KindRunEnd, Err: "panic during discovery"})
	if _, err := ValidateJSONL(&buf); err != nil {
		t.Errorf("failed run should validate without stage spans: %v", err)
	}
}
