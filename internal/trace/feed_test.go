package trace

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestFeedSinceCursors(t *testing.T) {
	f := NewFeed(8)
	for i := 0; i < 3; i++ {
		f.Emit(&Event{Kind: KindLevel, Level: i})
	}
	evs, next, dropped, closed := f.Since(0)
	if len(evs) != 3 || next != 3 || dropped || closed {
		t.Fatalf("Since(0) = %d events, next %d, dropped %v, closed %v; want 3, 3, false, false",
			len(evs), next, dropped, closed)
	}
	for i, ev := range evs {
		if ev.Level != i {
			t.Errorf("event %d has Level %d, want %d", i, ev.Level, i)
		}
		if ev.Time.IsZero() {
			t.Errorf("event %d was not time-stamped", i)
		}
	}
	// Resuming from next yields nothing new.
	evs, next2, _, _ := f.Since(next)
	if len(evs) != 0 || next2 != next {
		t.Fatalf("Since(%d) = %d events, next %d; want 0, %d", next, len(evs), next2, next)
	}
}

func TestFeedRingDrops(t *testing.T) {
	f := NewFeed(4)
	for i := 0; i < 10; i++ {
		f.Emit(&Event{Kind: KindLevel, Level: i})
	}
	evs, next, dropped, _ := f.Since(0)
	if !dropped {
		t.Fatal("Since(0) after wrap did not report dropped")
	}
	if len(evs) != 4 || next != 10 {
		t.Fatalf("got %d events, next %d; want the 4 retained, next 10", len(evs), next)
	}
	for i, ev := range evs {
		if want := 6 + i; ev.Level != want {
			t.Errorf("retained event %d has Level %d, want %d", i, ev.Level, want)
		}
	}
	// A reader who kept up is not marked dropped.
	if _, _, dropped, _ := f.Since(8); dropped {
		t.Error("in-window cursor reported dropped")
	}
}

func TestFeedCloseIdempotentAndDropsLateEmits(t *testing.T) {
	f := NewFeed(4)
	f.Emit(&Event{Kind: KindRunStart})
	f.Close()
	f.Close()
	f.Emit(&Event{Kind: KindRunEnd}) // dropped: feed already closed
	evs, _, _, closed := f.Since(0)
	if !closed {
		t.Fatal("Since did not report closed")
	}
	if len(evs) != 1 || evs[0].Kind != KindRunStart {
		t.Fatalf("got %d events (first %v), want just the pre-close run_start", len(evs), evs)
	}
}

func TestFeedWaitWakesOnEmitAndClose(t *testing.T) {
	f := NewFeed(4)
	done := make(chan error, 1)
	go func() { done <- f.Wait(context.Background(), 0) }()
	time.Sleep(10 * time.Millisecond)
	f.Emit(&Event{Kind: KindLevel})
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Wait returned %v after Emit", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Wait did not wake on Emit")
	}

	// Caught-up waiter wakes on Close.
	_, next, _, _ := f.Since(0)
	go func() { done <- f.Wait(context.Background(), next) }()
	time.Sleep(10 * time.Millisecond)
	f.Close()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Wait returned %v after Close", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Wait did not wake on Close")
	}
}

func TestFeedWaitHonorsContext(t *testing.T) {
	f := NewFeed(4)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- f.Wait(ctx, 0) }()
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("Wait returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Wait did not honor cancellation")
	}
}

func TestFeedConcurrentEmitAndDrain(t *testing.T) {
	const events, capacity = 500, 64
	f := NewFeed(capacity)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < events; i++ {
			f.Emit(&Event{Kind: KindLevel, Detail: fmt.Sprint(i)})
		}
		f.Close()
	}()
	var cursor uint64
	got := 0
	for {
		if err := f.Wait(context.Background(), cursor); err != nil {
			t.Fatalf("Wait: %v", err)
		}
		evs, next, _, closed := f.Since(cursor)
		got += len(evs)
		cursor = next
		if closed && next == cursor {
			if evs, _, _, _ := f.Since(cursor); len(evs) == 0 {
				break
			}
		}
	}
	wg.Wait()
	if got > events {
		t.Fatalf("drained %d events, more than the %d emitted", got, events)
	}
	if cursor != events {
		t.Fatalf("final cursor %d, want %d", cursor, events)
	}
}
