package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// Stages is the staged pipeline in execution order; a complete run's
// trace contains a stage span for each (see internal/core/run.go).
var Stages = []string{"plan", "traverse", "minimize", "verify", "assemble"}

// Summary reports what a validated trace contained.
type Summary struct {
	Events int
	Runs   int
}

// runState tracks per-run schema obligations while validating.
type runState struct {
	started    bool
	ended      bool
	stagesSeen map[string]bool
	openStages map[string]bool
	openRels   map[string]bool
	failed     bool
}

// ValidateJSONL checks a JSONL trace (as written by the JSONL
// backend) against the event schema: every line must decode strictly
// into an Event of a known kind carrying that kind's required fields,
// spans must nest (run brackets stages, stages bracket relations),
// and every successfully ended run must have traced all five pipeline
// stages. The first violation is returned with its line number.
func ValidateJSONL(r io.Reader) (*Summary, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	runs := make(map[string]*runState)
	var order []string
	sum := &Summary{}
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var ev Event
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&ev); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		if err := checkEvent(runs, &order, &ev); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		sum.Events++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	for _, id := range order {
		rs := runs[id]
		if !rs.ended {
			return nil, fmt.Errorf("trace: run %s has no run_end", id)
		}
	}
	sum.Runs = len(runs)
	return sum, nil
}

// stateFor returns the run's validation state, requiring that events
// for a run follow its run_start.
func stateFor(runs map[string]*runState, ev *Event) (*runState, error) {
	if ev.Run == "" {
		return nil, fmt.Errorf("%s event without a run id", ev.Kind)
	}
	rs := runs[ev.Run]
	if rs == nil || !rs.started {
		return nil, fmt.Errorf("%s event for run %s before its run_start", ev.Kind, ev.Run)
	}
	if rs.ended {
		return nil, fmt.Errorf("%s event for run %s after its run_end", ev.Kind, ev.Run)
	}
	return rs, nil
}

func checkEvent(runs map[string]*runState, order *[]string, ev *Event) error {
	if ev.Time.IsZero() {
		return fmt.Errorf("%s event without a timestamp", ev.Kind)
	}
	switch ev.Kind {
	case KindRunStart:
		if ev.Run == "" {
			return fmt.Errorf("run_start without a run id")
		}
		if runs[ev.Run] != nil {
			return fmt.Errorf("duplicate run_start for run %s", ev.Run)
		}
		runs[ev.Run] = &runState{
			started:    true,
			stagesSeen: make(map[string]bool),
			openStages: make(map[string]bool),
			openRels:   make(map[string]bool),
		}
		*order = append(*order, ev.Run)
	case KindRunEnd:
		rs, err := stateFor(runs, ev)
		if err != nil {
			return err
		}
		if len(rs.openStages) > 0 {
			return fmt.Errorf("run %s ended with an unclosed stage span", ev.Run)
		}
		rs.ended = true
		rs.failed = ev.Err != ""
		if !rs.failed {
			for _, s := range Stages {
				if !rs.stagesSeen[s] {
					return fmt.Errorf("run %s ended without tracing stage %q", ev.Run, s)
				}
			}
		}
	case KindStageStart, KindStageEnd:
		rs, err := stateFor(runs, ev)
		if err != nil {
			return err
		}
		if !knownStage(ev.Stage) {
			return fmt.Errorf("unknown stage %q", ev.Stage)
		}
		if ev.Kind == KindStageStart {
			if rs.openStages[ev.Stage] {
				return fmt.Errorf("stage %q started twice", ev.Stage)
			}
			rs.openStages[ev.Stage] = true
		} else {
			if !rs.openStages[ev.Stage] {
				return fmt.Errorf("stage_end for %q without a stage_start", ev.Stage)
			}
			delete(rs.openStages, ev.Stage)
			rs.stagesSeen[ev.Stage] = true
		}
	case KindRelationStart, KindRelationEnd:
		rs, err := stateFor(runs, ev)
		if err != nil {
			return err
		}
		if ev.Relation == "" {
			return fmt.Errorf("%s without a relation", ev.Kind)
		}
		if ev.Kind == KindRelationStart {
			if rs.openRels[ev.Relation] {
				return fmt.Errorf("relation %s started twice", ev.Relation)
			}
			rs.openRels[ev.Relation] = true
		} else {
			if !rs.openRels[ev.Relation] {
				return fmt.Errorf("relation_end for %s without a relation_start", ev.Relation)
			}
			delete(rs.openRels, ev.Relation)
		}
	case KindLevel:
		rs, err := stateFor(runs, ev)
		if err != nil {
			return err
		}
		if !rs.openRels[ev.Relation] {
			return fmt.Errorf("level event outside a relation span (relation %q)", ev.Relation)
		}
		if ev.Level < 1 {
			return fmt.Errorf("level event with level %d", ev.Level)
		}
	case KindTarget:
		if _, err := stateFor(runs, ev); err != nil {
			return err
		}
		if ev.Relation == "" {
			return fmt.Errorf("target event without a relation")
		}
		switch ev.Action {
		case "create", "propagate", "drop":
		default:
			return fmt.Errorf("target event with action %q", ev.Action)
		}
	case KindGovernor:
		if _, err := stateFor(runs, ev); err != nil {
			return err
		}
		switch ev.Action {
		case "worker_spawn", "truncate":
		default:
			return fmt.Errorf("governor event with action %q", ev.Action)
		}
	case KindCheck:
		switch ev.Action {
		case "holds", "violated":
		default:
			return fmt.Errorf("check event with action %q", ev.Action)
		}
	case KindUpdateApply:
		// Updates run outside discovery runs: no run id, no span
		// nesting. A rejected batch carries Err and zero counts.
		if ev.Err == "" && ev.Ops < 1 {
			return fmt.Errorf("update_apply event with %d ops", ev.Ops)
		}
	case KindPartitionPatch:
		if ev.Relation == "" {
			return fmt.Errorf("partition_patch event without a relation")
		}
	default:
		return fmt.Errorf("unknown event kind %q", ev.Kind)
	}
	return nil
}

func knownStage(s string) bool {
	for _, st := range Stages {
		if s == st {
			return true
		}
	}
	return false
}
