package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// Stages is the staged pipeline in execution order; a complete run's
// trace contains a stage span for each (see internal/core/run.go).
var Stages = []string{"plan", "traverse", "minimize", "verify", "assemble"}

// Summary reports what a validated trace contained.
type Summary struct {
	Events   int
	Runs     int
	Requests int
}

// runState tracks per-run schema obligations while validating.
type runState struct {
	started    bool
	ended      bool
	stagesSeen map[string]bool
	openStages map[string]bool
	openRels   map[string]bool
	failed     bool
	// traceID/requestID are the correlation ids the run_start carried
	// (possibly empty — library runs have none); every later event of
	// the run must carry the identical pair.
	traceID   string
	requestID string
}

// reqState tracks one HTTP request span (request_start/request_end,
// keyed by request_id).
type reqState struct {
	started bool
	ended   bool
}

// ValidateJSONL checks a JSONL trace (as written by the JSONL
// backend) against the event schema: every line must decode strictly
// into an Event of a known kind carrying that kind's required fields,
// spans must nest (run brackets stages, stages bracket relations),
// every successfully ended run must have traced all five pipeline
// stages, trace_id/request_id correlation fields must be well-formed
// hex (32 and 16 lowercase digits, not all-zero) and constant within
// a run, and every request span (request_start, emitted by xfdd's
// instrumentation) must be closed by a request_end for the same
// request_id. The first violation is returned with its line number.
func ValidateJSONL(r io.Reader) (*Summary, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	runs := make(map[string]*runState)
	reqs := make(map[string]*reqState)
	var order []string
	var reqOrder []string
	sum := &Summary{}
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var ev Event
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&ev); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		if err := checkEvent(runs, &order, reqs, &reqOrder, &ev); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		sum.Events++
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	for _, id := range order {
		rs := runs[id]
		if !rs.ended {
			return nil, fmt.Errorf("trace: run %s has no run_end", id)
		}
	}
	for _, id := range reqOrder {
		if !reqs[id].ended {
			return nil, fmt.Errorf("trace: request %s has no request_end", id)
		}
	}
	sum.Runs = len(runs)
	sum.Requests = len(reqs)
	return sum, nil
}

// stateFor returns the run's validation state, requiring that events
// for a run follow its run_start.
func stateFor(runs map[string]*runState, ev *Event) (*runState, error) {
	if ev.Run == "" {
		return nil, fmt.Errorf("%s event without a run id", ev.Kind)
	}
	rs := runs[ev.Run]
	if rs == nil || !rs.started {
		return nil, fmt.Errorf("%s event for run %s before its run_start", ev.Kind, ev.Run)
	}
	if rs.ended {
		return nil, fmt.Errorf("%s event for run %s after its run_end", ev.Kind, ev.Run)
	}
	if ev.TraceID != rs.traceID {
		return nil, fmt.Errorf("%s event trace_id %q differs from run %s's %q (must be constant within a run)",
			ev.Kind, ev.TraceID, ev.Run, rs.traceID)
	}
	if ev.RequestID != rs.requestID {
		return nil, fmt.Errorf("%s event request_id %q differs from run %s's %q (must be constant within a run)",
			ev.Kind, ev.RequestID, ev.Run, rs.requestID)
	}
	return rs, nil
}

func checkEvent(runs map[string]*runState, order *[]string, reqs map[string]*reqState, reqOrder *[]string, ev *Event) error {
	if ev.Time.IsZero() {
		return fmt.Errorf("%s event without a timestamp", ev.Kind)
	}
	if ev.TraceID != "" && !IsTraceID(ev.TraceID) {
		return fmt.Errorf("%s event with malformed trace_id %q (want 32 lowercase hex digits, not all zero)", ev.Kind, ev.TraceID)
	}
	if ev.RequestID != "" && !IsSpanID(ev.RequestID) {
		return fmt.Errorf("%s event with malformed request_id %q (want 16 lowercase hex digits, not all zero)", ev.Kind, ev.RequestID)
	}
	switch ev.Kind {
	case KindRunStart:
		if ev.Run == "" {
			return fmt.Errorf("run_start without a run id")
		}
		if runs[ev.Run] != nil {
			return fmt.Errorf("duplicate run_start for run %s", ev.Run)
		}
		runs[ev.Run] = &runState{
			started:    true,
			stagesSeen: make(map[string]bool),
			openStages: make(map[string]bool),
			openRels:   make(map[string]bool),
			traceID:    ev.TraceID,
			requestID:  ev.RequestID,
		}
		*order = append(*order, ev.Run)
	case KindRunEnd:
		rs, err := stateFor(runs, ev)
		if err != nil {
			return err
		}
		if len(rs.openStages) > 0 {
			return fmt.Errorf("run %s ended with an unclosed stage span", ev.Run)
		}
		rs.ended = true
		rs.failed = ev.Err != ""
		if !rs.failed {
			for _, s := range Stages {
				if !rs.stagesSeen[s] {
					return fmt.Errorf("run %s ended without tracing stage %q", ev.Run, s)
				}
			}
		}
	case KindStageStart, KindStageEnd:
		rs, err := stateFor(runs, ev)
		if err != nil {
			return err
		}
		if !knownStage(ev.Stage) {
			return fmt.Errorf("unknown stage %q", ev.Stage)
		}
		if ev.Kind == KindStageStart {
			if rs.openStages[ev.Stage] {
				return fmt.Errorf("stage %q started twice", ev.Stage)
			}
			rs.openStages[ev.Stage] = true
		} else {
			if !rs.openStages[ev.Stage] {
				return fmt.Errorf("stage_end for %q without a stage_start", ev.Stage)
			}
			delete(rs.openStages, ev.Stage)
			rs.stagesSeen[ev.Stage] = true
		}
	case KindRelationStart, KindRelationEnd:
		rs, err := stateFor(runs, ev)
		if err != nil {
			return err
		}
		if ev.Relation == "" {
			return fmt.Errorf("%s without a relation", ev.Kind)
		}
		if ev.Kind == KindRelationStart {
			if rs.openRels[ev.Relation] {
				return fmt.Errorf("relation %s started twice", ev.Relation)
			}
			rs.openRels[ev.Relation] = true
		} else {
			if !rs.openRels[ev.Relation] {
				return fmt.Errorf("relation_end for %s without a relation_start", ev.Relation)
			}
			delete(rs.openRels, ev.Relation)
		}
	case KindLevel:
		rs, err := stateFor(runs, ev)
		if err != nil {
			return err
		}
		if !rs.openRels[ev.Relation] {
			return fmt.Errorf("level event outside a relation span (relation %q)", ev.Relation)
		}
		if ev.Level < 1 {
			return fmt.Errorf("level event with level %d", ev.Level)
		}
	case KindTarget:
		if _, err := stateFor(runs, ev); err != nil {
			return err
		}
		if ev.Relation == "" {
			return fmt.Errorf("target event without a relation")
		}
		switch ev.Action {
		case "create", "propagate", "drop":
		default:
			return fmt.Errorf("target event with action %q", ev.Action)
		}
	case KindGovernor:
		if _, err := stateFor(runs, ev); err != nil {
			return err
		}
		switch ev.Action {
		case "worker_spawn", "truncate":
		default:
			return fmt.Errorf("governor event with action %q", ev.Action)
		}
	case KindCheck:
		switch ev.Action {
		case "holds", "violated":
		default:
			return fmt.Errorf("check event with action %q", ev.Action)
		}
	case KindUpdateApply:
		// Updates run outside discovery runs: no run id, no span
		// nesting. A rejected batch carries Err and zero counts.
		if ev.Err == "" && ev.Ops < 1 {
			return fmt.Errorf("update_apply event with %d ops", ev.Ops)
		}
	case KindPartitionPatch:
		if ev.Relation == "" {
			return fmt.Errorf("partition_patch event without a relation")
		}
	case KindRequestStart, KindRequestEnd:
		// Request spans are not runs: no run id, correlated by
		// request_id instead of span nesting.
		if ev.Run != "" {
			return fmt.Errorf("%s event with a run id (%s)", ev.Kind, ev.Run)
		}
		if ev.TraceID == "" {
			return fmt.Errorf("%s event without a trace_id", ev.Kind)
		}
		if ev.RequestID == "" {
			return fmt.Errorf("%s event without a request_id", ev.Kind)
		}
		if ev.Kind == KindRequestStart {
			if reqs[ev.RequestID] != nil {
				return fmt.Errorf("duplicate request_start for request %s", ev.RequestID)
			}
			reqs[ev.RequestID] = &reqState{started: true}
			*reqOrder = append(*reqOrder, ev.RequestID)
		} else {
			q := reqs[ev.RequestID]
			if q == nil || !q.started {
				return fmt.Errorf("request_end for request %s without a request_start", ev.RequestID)
			}
			if q.ended {
				return fmt.Errorf("second request_end for request %s", ev.RequestID)
			}
			if ev.Status < 100 || ev.Status > 599 {
				return fmt.Errorf("request_end with status %d", ev.Status)
			}
			q.ended = true
		}
	default:
		return fmt.Errorf("unknown event kind %q", ev.Kind)
	}
	return nil
}

func knownStage(s string) bool {
	for _, st := range Stages {
		if s == st {
			return true
		}
	}
	return false
}
