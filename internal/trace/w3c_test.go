package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestParseTraceparentAccepts(t *testing.T) {
	cases := []struct {
		in   string
		want Traceparent
	}{
		{"00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
			Traceparent{"0af7651916cd43dd8448eb211c80319c", "b7ad6b7169203331", "01"}},
		{"  00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-00  ",
			Traceparent{"0af7651916cd43dd8448eb211c80319c", "b7ad6b7169203331", "00"}},
		// Forward compatibility: a higher version may carry extra fields.
		{"cc-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-extra",
			Traceparent{"0af7651916cd43dd8448eb211c80319c", "b7ad6b7169203331", "01"}},
	}
	for _, c := range cases {
		got, err := ParseTraceparent(c.in)
		if err != nil {
			t.Errorf("ParseTraceparent(%q): %v", c.in, err)
			continue
		}
		if got != c.want {
			t.Errorf("ParseTraceparent(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"too few fields":   "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331",
		"version ff":       "ff-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
		"version not hex":  "zz-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01",
		"v00 extra fields": "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01-x",
		"short trace id":   "00-0af7651916cd43dd8448eb211c8031-b7ad6b7169203331-01",
		"zero trace id":    "00-00000000000000000000000000000000-b7ad6b7169203331-01",
		"uppercase hex":    "00-0AF7651916CD43DD8448EB211C80319C-b7ad6b7169203331-01",
		"zero parent id":   "00-0af7651916cd43dd8448eb211c80319c-0000000000000000-01",
		"short parent id":  "00-0af7651916cd43dd8448eb211c80319c-b7ad6b71692033-01",
		"bad flags":        "00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-0g",
	}
	for name, in := range cases {
		if _, err := ParseTraceparent(in); err == nil {
			t.Errorf("%s: ParseTraceparent(%q) accepted", name, in)
		}
	}
}

func TestStringRoundTrips(t *testing.T) {
	tp := Traceparent{TraceID: NewTraceID(), ParentID: NewSpanID(), Flags: "01"}
	back, err := ParseTraceparent(tp.String())
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if back != tp {
		t.Errorf("round trip = %+v, want %+v", back, tp)
	}
}

func TestNewIDsWellFormed(t *testing.T) {
	for i := 0; i < 64; i++ {
		if id := NewTraceID(); !IsTraceID(id) {
			t.Fatalf("NewTraceID() = %q not well-formed", id)
		}
		if id := NewSpanID(); !IsSpanID(id) {
			t.Fatalf("NewSpanID() = %q not well-formed", id)
		}
	}
	if NewTraceID() == NewTraceID() {
		t.Error("consecutive trace ids collide")
	}
}

func TestWithIDsStampsEvents(t *testing.T) {
	if WithIDs(nil, "a", "b") != nil {
		t.Error("WithIDs(nil) should stay nil")
	}
	var buf bytes.Buffer
	traceID, reqID := NewTraceID(), NewSpanID()
	// Serving-layer layering: WithRun inside, WithIDs outside, so run
	// events carry both the run id and the request correlation.
	tr := WithRun(WithIDs(NewJSONL(&buf), traceID, reqID), "run-3")
	tr.Emit(&Event{Kind: KindStageStart, Stage: "plan"})
	var ev Event
	if err := json.Unmarshal(buf.Bytes(), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Run != "run-3" || ev.TraceID != traceID || ev.RequestID != reqID {
		t.Errorf("stamped event = %+v", ev)
	}
}

// correlatedTrace writes a request span plus the run it admitted, all
// stamped with one trace_id/request_id pair — the shape xfdd's
// instrumentation middleware produces.
func correlatedTrace(traceID, reqID string) string {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	ids := WithIDs(j, traceID, reqID)
	ids.Emit(&Event{Kind: KindRequestStart, Action: "POST", Detail: "/v1/discover"})
	tr := WithRun(ids, "run-1")
	tr.Emit(&Event{Kind: KindRunStart, Relations: 1, Tuples: 5})
	for _, s := range Stages {
		tr.Emit(&Event{Kind: KindStageStart, Stage: s})
		tr.Emit(&Event{Kind: KindStageEnd, Stage: s, DurationMS: 1})
	}
	tr.Emit(&Event{Kind: KindRunEnd, DurationMS: 5})
	ids.Emit(&Event{Kind: KindRequestEnd, Action: "POST", Detail: "/v1/discover",
		Status: 200, Bytes: 128, DurationMS: 6})
	return buf.String()
}

func TestValidateJSONLAcceptsCorrelatedTrace(t *testing.T) {
	traceID, reqID := NewTraceID(), NewSpanID()
	sum, err := ValidateJSONL(strings.NewReader(correlatedTrace(traceID, reqID)))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Runs != 1 || sum.Requests != 1 {
		t.Errorf("summary = %+v, want 1 run and 1 request", sum)
	}
}

func TestValidateJSONLRejectsIDViolations(t *testing.T) {
	traceID, reqID := NewTraceID(), NewSpanID()
	good := correlatedTrace(traceID, reqID)
	otherTrace := NewTraceID()
	stamp := `"t":"2026-01-01T00:00:00Z"`
	ids := `"trace_id":"` + traceID + `","request_id":"` + reqID + `",`
	cases := []struct {
		name string
		in   string
		want string
	}{
		{"malformed trace_id",
			`{"event":"run_start","run":"r","trace_id":"xyz",` + stamp + `}` + "\n",
			"malformed trace_id"},
		{"malformed request_id",
			`{"event":"run_start","run":"r","request_id":"123",` + stamp + `}` + "\n",
			"malformed request_id"},
		{"trace_id changes mid-run",
			strings.Replace(good, traceID, otherTrace, 3),
			"must be constant within a run"},
		{"request span with run id",
			`{"event":"request_start","run":"r",` + ids + `"action":"GET",` + stamp + `}` + "\n",
			"with a run id"},
		{"request_start without trace_id",
			`{"event":"request_start","request_id":"` + reqID + `","action":"GET",` + stamp + `}` + "\n",
			"without a trace_id"},
		{"request_end without start",
			`{"event":"request_end",` + ids + `"status":200,` + stamp + `}` + "\n",
			"without a request_start"},
		{"duplicate request_start",
			`{"event":"request_start",` + ids + stamp + `}` + "\n" +
				`{"event":"request_start",` + ids + stamp + `}` + "\n",
			"duplicate request_start"},
		{"unclosed request",
			`{"event":"request_start",` + ids + stamp + `}` + "\n",
			"no request_end"},
		{"bad status",
			`{"event":"request_start",` + ids + stamp + `}` + "\n" +
				`{"event":"request_end",` + ids + `"status":99,` + stamp + `}` + "\n",
			"request_end with status"},
		{"second request_end",
			`{"event":"request_start",` + ids + stamp + `}` + "\n" +
				`{"event":"request_end",` + ids + `"status":200,` + stamp + `}` + "\n" +
				`{"event":"request_end",` + ids + `"status":200,` + stamp + `}` + "\n",
			"second request_end"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ValidateJSONL(strings.NewReader(c.in))
			if err == nil {
				t.Fatalf("validator accepted %s", c.name)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}
