package trace

import (
	"context"
	"log/slog"
	"sync"
	"time"
)

// DefaultThrottle is the minimum interval between progress-log
// records for hot-path events (lattice levels, target lifecycle) of
// one relation. Span events (run, stage, relation, governor) are
// never throttled — they are rare and load-bearing.
const DefaultThrottle = 250 * time.Millisecond

// Progress renders trace events as log/slog records — the `-v`/`-vv`
// live progress view of a run. Two verbosity tiers:
//
//   - verbose == false (-v): run, stage and relation spans plus
//     governor events — the coarse "where is the run" view;
//   - verbose == true (-vv): additionally per-lattice-level progress
//     and target lifecycle events, throttled to at most one record
//     per relation per throttle interval so a hot lattice cannot
//     flood the log.
//
// Truncation and run failures log at Warn/Error; everything else at
// Info. Progress spawns no goroutines and synchronizes with a mutex,
// like every backend in this package.
type Progress struct {
	log     *slog.Logger
	verbose bool

	mu       sync.Mutex
	throttle time.Duration
	last     map[string]time.Time // hot-path emission time per relation; guarded by mu
	now      func() time.Time
}

// NewProgress returns a Progress logger emitting through l (nil means
// slog.Default) at the given verbosity, throttling hot-path events to
// DefaultThrottle.
func NewProgress(l *slog.Logger, verbose bool) *Progress {
	if l == nil {
		l = slog.Default()
	}
	return &Progress{
		log:      l,
		verbose:  verbose,
		throttle: DefaultThrottle,
		last:     make(map[string]time.Time),
		now:      time.Now,
	}
}

// Emit renders one event, applying the verbosity and throttle rules.
func (p *Progress) Emit(ev *Event) {
	switch ev.Kind {
	case KindLevel, KindTarget:
		if !p.verbose || !p.admit(ev.Relation) {
			return
		}
	}
	level := slog.LevelInfo
	if (ev.Kind == KindRunEnd && ev.Truncated) || (ev.Kind == KindGovernor && ev.Action == "truncate") {
		level = slog.LevelWarn
	}
	if ev.Err != "" {
		level = slog.LevelError
	}
	//lint:ctxplumb slog's context is for handler plumbing only; progress logging has no cancellation to propagate
	p.log.LogAttrs(context.Background(), level, string(ev.Kind), p.attrs(ev)...)
}

// admit reports whether a hot-path event for the relation may log,
// recording the admission time.
func (p *Progress) admit(relation string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := p.now()
	if last, ok := p.last[relation]; ok && now.Sub(last) < p.throttle {
		return false
	}
	p.last[relation] = now
	return true
}

// attrs flattens the event's populated fields into slog attributes,
// in the schema's field order.
func (p *Progress) attrs(ev *Event) []slog.Attr {
	out := make([]slog.Attr, 0, 8)
	add := func(key, val string) {
		if val != "" {
			out = append(out, slog.String(key, val))
		}
	}
	addInt := func(key string, val int) {
		if val != 0 {
			out = append(out, slog.Int(key, val))
		}
	}
	add("run", ev.Run)
	add("stage", ev.Stage)
	add("relation", ev.Relation)
	addInt("level", ev.Level)
	addInt("tuples", ev.Tuples)
	addInt("attrs", ev.Attrs)
	addInt("relations", ev.Relations)
	addInt("nodes", ev.Nodes)
	addInt("products", ev.Products)
	addInt("cacheHits", ev.CacheHits)
	addInt("cacheMisses", ev.CacheMisses)
	if ev.HitRate != 0 {
		out = append(out, slog.Float64("hitRate", ev.HitRate))
	}
	if ev.CacheBytes != 0 {
		out = append(out, slog.Int64("cacheBytes", ev.CacheBytes))
	}
	add("action", ev.Action)
	add("detail", ev.Detail)
	addInt("pairs", ev.Pairs)
	addInt("workers", ev.Workers)
	if ev.DurationMS != 0 {
		out = append(out, slog.Float64("ms", ev.DurationMS))
	}
	if ev.Truncated {
		out = append(out, slog.Bool("truncated", true))
	}
	add("error", ev.Err)
	return out
}
