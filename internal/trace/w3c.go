package trace

// w3c.go implements the W3C Trace Context header (traceparent,
// https://www.w3.org/TR/trace-context/) — the wire half of request
// correlation. xfdd parses an inbound traceparent so the run joins
// the caller's distributed trace, mints a fresh span id for the
// request (which doubles as the X-Request-Id), and echoes the
// resulting traceparent on the response. The identifiers land on
// every trace Event via WithIDs, so one grep over a JSONL trace file
// by trace_id yields the request span plus the complete run it
// admitted.

import (
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
)

// Traceparent is a parsed W3C traceparent header: version 00,
// `00-<trace-id>-<parent-id>-<flags>` with a 16-byte trace id and an
// 8-byte parent (span) id, both lowercase hex and not all-zero.
type Traceparent struct {
	TraceID  string // 32 lowercase hex digits
	ParentID string // 16 lowercase hex digits
	Flags    string // 2 lowercase hex digits (01 = sampled)
}

// String renders the header value.
func (tp Traceparent) String() string {
	return "00-" + tp.TraceID + "-" + tp.ParentID + "-" + tp.Flags
}

// ParseTraceparent parses a traceparent header value. Per the spec a
// higher version is accepted as long as the 00-version prefix shape
// holds (forward compatibility); version ff and malformed or all-zero
// identifiers are rejected.
func ParseTraceparent(s string) (Traceparent, error) {
	parts := strings.SplitN(strings.TrimSpace(s), "-", 5)
	if len(parts) < 4 {
		return Traceparent{}, fmt.Errorf("trace: malformed traceparent %q", s)
	}
	version, traceID, parentID, flags := parts[0], parts[1], parts[2], parts[3]
	if !isHex(version, 2) || version == "ff" {
		return Traceparent{}, fmt.Errorf("trace: bad traceparent version %q", version)
	}
	if version == "00" && len(parts) != 4 {
		return Traceparent{}, fmt.Errorf("trace: version 00 traceparent with trailing fields")
	}
	if !IsTraceID(traceID) {
		return Traceparent{}, fmt.Errorf("trace: bad trace-id %q", traceID)
	}
	if !IsSpanID(parentID) {
		return Traceparent{}, fmt.Errorf("trace: bad parent-id %q", parentID)
	}
	if !isHex(flags, 2) {
		return Traceparent{}, fmt.Errorf("trace: bad trace-flags %q", flags)
	}
	return Traceparent{TraceID: traceID, ParentID: parentID, Flags: flags}, nil
}

// NewTraceID mints a random 16-byte trace id.
func NewTraceID() string { return randomHex(16) }

// NewSpanID mints a random 8-byte span id — the per-request id xfdd
// stamps into events and echoes as X-Request-Id.
func NewSpanID() string { return randomHex(8) }

// randomHex returns n random bytes as lowercase hex, never all-zero.
func randomHex(n int) string {
	b := make([]byte, n)
	for {
		// crypto/rand.Read never fails on supported platforms; if it
		// somehow returns short, loop rather than hand out zeros.
		if _, err := rand.Read(b); err != nil {
			continue
		}
		for _, c := range b {
			if c != 0 {
				return hex.EncodeToString(b)
			}
		}
	}
}

// IsTraceID reports whether s is a well-formed, non-zero 32-digit
// lowercase-hex trace id.
func IsTraceID(s string) bool { return isHex(s, 32) && !allZero(s) }

// IsSpanID reports whether s is a well-formed, non-zero 16-digit
// lowercase-hex span id (the request_id event field).
func IsSpanID(s string) bool { return isHex(s, 16) && !allZero(s) }

func isHex(s string, n int) bool {
	if len(s) != n {
		return false
	}
	for _, c := range s {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func allZero(s string) bool {
	for _, c := range s {
		if c != '0' {
			return false
		}
	}
	return true
}
