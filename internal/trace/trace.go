// Package trace is the run-scoped tracing and progress layer of the
// discovery engine. The core pipeline emits typed Events — stage
// spans for the plan→traverse→minimize→verify→assemble pipeline,
// per-relation traversal spans, per-lattice-level progress with live
// partition-cache gauges, partition-target lifecycle events, and
// governor events for worker spawns and budget truncation — to a
// Tracer supplied via Options. Two stdlib-only backends are provided:
// a JSONL event writer (one JSON object per line, see JSONL) and a
// throttled log/slog progress logger (see Progress).
//
// Nil-safety contract: a nil Tracer means tracing is off, and every
// helper in this package (Emit, WithRun, Multi) tolerates nil. The
// engine's hot paths guard event construction behind a single
// `tracer != nil` pointer check so the nil-tracer fast path adds no
// measurable overhead (the E13 bench gate pins this).
//
// Concurrency contract: a Tracer must be safe for concurrent Emit
// calls — parallel discovery emits from governed worker goroutines.
// Backends in this package synchronize internally with a mutex and
// spawn no goroutines of their own (the xfdlint govdiscipline
// analyzer enforces the no-spawn rule repo-wide).
package trace

import "time"

// Kind identifies the type of a trace event. The set of kinds, and
// the fields each kind carries, are the event schema documented in
// docs/INTERNALS.md §12 and enforced by ValidateJSONL.
type Kind string

const (
	// KindRunStart opens a discovery run: run, relations, tuples.
	KindRunStart Kind = "run_start"
	// KindRunEnd closes it: run, ms, truncated (and detail = the
	// truncation reason), error if the run failed.
	KindRunEnd Kind = "run_end"
	// KindStageStart/KindStageEnd bracket one pipeline stage: run,
	// stage ∈ {plan, traverse, minimize, verify, assemble}; the end
	// event carries ms.
	KindStageStart Kind = "stage_start"
	KindStageEnd   Kind = "stage_end"
	// KindRelationStart/KindRelationEnd bracket one relation's lattice
	// traversal: run, relation (pivot path), tuples, attrs; the end
	// event carries ms and the relation's node total.
	KindRelationStart Kind = "relation_start"
	KindRelationEnd   Kind = "relation_end"
	// KindLevel reports one completed lattice level of a relation:
	// level, nodes visited, products computed, cache hits/misses and
	// hit rate for the level, plus the cache's live byte gauge.
	KindLevel Kind = "level"
	// KindTarget reports a partition-target lifecycle step: relation,
	// action ∈ {create, propagate, drop}, pairs (inequality count),
	// and for drops a detail naming the cause.
	KindTarget Kind = "target"
	// KindGovernor reports a resource-governor action: action ∈
	// {worker_spawn, truncate}, with workers counting a spawn batch
	// and detail naming what was spawned or why the run truncated.
	KindGovernor Kind = "governor"
	// KindCheck reports one constraint evaluation (xfdcheck): detail
	// is the constraint, action ∈ {holds, violated}.
	KindCheck Kind = "check"
	// KindUpdateApply closes an incremental document update span: ops
	// applied, relations touched, tuples (total dirty rows), ms, and
	// error if the batch was rejected. Updates run outside discovery
	// runs, so the event carries no run id.
	KindUpdateApply Kind = "update_apply"
	// KindPartitionPatch reports the warm-layer patch of one touched
	// relation after an update: relation, tuples (touched rows), attrs
	// (dirty columns), and the fate of its retained partitions —
	// kept (shared untouched), patched (spliced in place of a
	// rebuild), dropped (stale multi-column sets).
	KindPartitionPatch Kind = "partition_patch"
	// KindRequestStart/KindRequestEnd bracket one HTTP request served
	// by xfdd (internal/server's instrumentation middleware): trace_id
	// and request_id (the W3C trace-context identifiers, see
	// Traceparent), action = the HTTP method, detail = the route
	// pattern; the end event carries status, bytes written, and ms.
	// Requests are not runs — they carry no run id, and the discovery
	// run a request admits is correlated through the shared trace_id
	// instead of span nesting.
	KindRequestStart Kind = "request_start"
	KindRequestEnd   Kind = "request_end"
)

// Event is one typed trace event. Unused fields stay at their zero
// value and are omitted from the JSONL encoding; which fields a kind
// carries is part of the schema (see the Kind constants). Emitters
// hand the event to the Tracer synchronously and may reuse nothing:
// a backend must finish with the pointer before returning (copy it if
// it needs to retain the event).
type Event struct {
	Kind Kind `json:"event"`
	// Time is stamped by the backend at emission (the core leaves it
	// zero so that event content stays deterministic for a serial run).
	Time time.Time `json:"t"`
	// Run identifies the discovery run, unique within the process.
	Run      string `json:"run,omitempty"`
	Stage    string `json:"stage,omitempty"`
	Relation string `json:"relation,omitempty"`
	Level    int    `json:"level,omitempty"`

	// TraceID and RequestID are the W3C trace-context identifiers of
	// the HTTP request this event belongs to (32 and 16 lowercase hex
	// digits; see Traceparent). The serving layer stamps them via
	// WithIDs, so every event of a request — the request span and all
	// of its run's events — carries the same pair, linking a JSONL
	// trace line back to the request (and to the caller's distributed
	// trace). Library runs leave them empty.
	TraceID   string `json:"trace_id,omitempty"`
	RequestID string `json:"request_id,omitempty"`

	Tuples    int `json:"tuples,omitempty"`
	Attrs     int `json:"attrs,omitempty"`
	Relations int `json:"relations,omitempty"`
	Nodes     int `json:"nodes,omitempty"`
	Products  int `json:"products,omitempty"`

	CacheHits   int     `json:"cacheHits,omitempty"`
	CacheMisses int     `json:"cacheMisses,omitempty"`
	HitRate     float64 `json:"hitRate,omitempty"`
	// CacheBytes is the partition cache's live byte gauge at emission.
	CacheBytes int64 `json:"cacheBytes,omitempty"`

	Action  string `json:"action,omitempty"`
	Detail  string `json:"detail,omitempty"`
	Pairs   int    `json:"pairs,omitempty"`
	Workers int    `json:"workers,omitempty"`

	// Update-path fields (update_apply, partition_patch).
	Ops     int `json:"ops,omitempty"`
	Kept    int `json:"kept,omitempty"`
	Patched int `json:"patched,omitempty"`
	Dropped int `json:"dropped,omitempty"`

	// Request-span fields (request_end): the response status code and
	// body bytes written.
	Status int   `json:"status,omitempty"`
	Bytes  int64 `json:"bytes,omitempty"`

	// DurationMS closes a span (stage_end, relation_end, run_end).
	DurationMS float64 `json:"ms,omitempty"`
	Truncated  bool    `json:"truncated,omitempty"`
	Err        string  `json:"error,omitempty"`
}

// Tracer receives the engine's trace events. Implementations must be
// safe for concurrent use and must not retain the *Event past the
// Emit call. A nil Tracer disables tracing; use the package helpers
// (Emit, WithRun, Multi), which all tolerate nil.
type Tracer interface {
	Emit(ev *Event)
}

// Emit forwards ev to t, tolerating a nil tracer. Hot paths should
// additionally guard event construction behind their own nil check so
// the disabled path never allocates.
func Emit(t Tracer, ev *Event) {
	if t != nil {
		t.Emit(ev)
	}
}

// runScoped stamps every event with a run id before forwarding.
type runScoped struct {
	t   Tracer
	run string
}

func (r runScoped) Emit(ev *Event) {
	ev.Run = r.run
	r.t.Emit(ev)
}

// WithRun returns a Tracer that stamps every event with the run id.
// A nil tracer stays nil, preserving the disabled fast path.
func WithRun(t Tracer, run string) Tracer {
	if t == nil {
		return nil
	}
	return runScoped{t: t, run: run}
}

// idScoped stamps every event with the request's trace-context
// identifiers before forwarding.
type idScoped struct {
	t         Tracer
	traceID   string
	requestID string
}

func (s idScoped) Emit(ev *Event) {
	ev.TraceID = s.traceID
	ev.RequestID = s.requestID
	s.t.Emit(ev)
}

// WithIDs returns a Tracer that stamps every event with the W3C
// trace-context identifiers of the request it serves (trace_id and
// request_id; see Traceparent). The serving layer wraps its backend
// with WithIDs before handing it to a run's Options, so the run's
// events — stamped with the run id by WithRun on the inside — also
// carry the request correlation on the outside. A nil tracer stays
// nil, preserving the disabled fast path.
func WithIDs(t Tracer, traceID, requestID string) Tracer {
	if t == nil {
		return nil
	}
	return idScoped{t: t, traceID: traceID, requestID: requestID}
}

// multi fans one event out to several backends in order.
type multi []Tracer

func (m multi) Emit(ev *Event) {
	for _, t := range m {
		t.Emit(ev)
	}
}

// Multi combines tracers into one, dropping nils. Zero live tracers
// collapse to nil (tracing off) and a single one is returned as-is,
// so the common one-backend case pays no fan-out indirection.
func Multi(ts ...Tracer) Tracer {
	live := make(multi, 0, len(ts))
	for _, t := range ts {
		if t != nil {
			live = append(live, t)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	}
	return live
}

// discard is a Tracer that drops every event. It exists for
// benchmarks that measure event-construction cost apart from backend
// cost (E13's traced-overhead metric).
type discard struct{}

func (discard) Emit(*Event) {}

// Discard drops every event it receives.
var Discard Tracer = discard{}
