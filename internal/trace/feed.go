package trace

import (
	"context"
	"sync"
	"time"
)

// Feed is a bounded in-memory event sink built for serving a run's
// progress to remote observers: xfdd attaches one Feed per job and
// streams it out over SSE or hands out pages to polling clients. It
// implements Tracer, so it plugs into Options.Trace (usually behind
// Multi, next to the durable JSONL backend).
//
// The feed is a ring holding the most recent events, addressed by
// absolute cursors: the i-th event ever emitted has cursor i, and a
// reader resumes from wherever it left off by passing its last `next`
// back to Since. A slow reader never blocks the engine — when the
// ring wraps, the oldest events are dropped and the reader is told so
// (the durable trace is the JSONL file; the feed is a progress
// window, not a log).
//
// Like every backend in this package, Feed synchronizes with a mutex
// and spawns no goroutines: Wait blocks the *caller's* goroutine on a
// wake channel that Emit and Close close-and-replace.
type Feed struct {
	mu     sync.Mutex
	ring   []Event       // guarded by mu
	total  uint64        // events ever emitted; the next event's cursor; guarded by mu
	closed bool          // guarded by mu
	wake   chan struct{} // closed and replaced on every state change; guarded by mu
}

// NewFeed returns a Feed retaining the most recent capacity events
// (minimum 1).
func NewFeed(capacity int) *Feed {
	if capacity < 1 {
		capacity = 1
	}
	return &Feed{ring: make([]Event, capacity), wake: make(chan struct{})}
}

// Emit copies ev into the ring, stamping its time if the emitter left
// it zero, and wakes any Wait-ers. Events arriving after Close are
// dropped — the run outliving its observers must not grow state.
func (f *Feed) Emit(ev *Event) {
	e := *ev
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.ring[f.total%uint64(len(f.ring))] = e
	f.total++
	wake := f.wake
	f.wake = make(chan struct{})
	f.mu.Unlock()
	close(wake)
}

// Close marks the feed complete and wakes any Wait-ers. Readers see
// closed=true from Since once they have drained the remaining events.
// Close is idempotent.
func (f *Feed) Close() {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.closed = true
	wake := f.wake
	f.wake = make(chan struct{})
	f.mu.Unlock()
	close(wake)
}

// Since returns a copy of every retained event with cursor ≥ cursor,
// the cursor to resume from next time, whether the ring wrapped past
// the caller (dropped: the reader missed events and should consult
// the durable trace for completeness), and whether the feed is
// closed. A cursor beyond the end is clamped; (nil, next, …) means
// nothing new yet.
func (f *Feed) Since(cursor uint64) (events []Event, next uint64, dropped, closed bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	size := uint64(len(f.ring))
	live := f.total
	if live > size {
		live = size
	}
	oldest := f.total - live
	if cursor > f.total {
		cursor = f.total
	}
	if cursor < oldest {
		dropped = true
		cursor = oldest
	}
	if cursor < f.total {
		events = make([]Event, 0, f.total-cursor)
		for i := cursor; i < f.total; i++ {
			events = append(events, f.ring[i%size])
		}
	}
	return events, f.total, dropped, f.closed
}

// Wait blocks until an event with cursor ≥ cursor exists, the feed is
// closed, or ctx fires (returning ctx.Err()). The SSE loop is
// Wait → Since → write, repeated until Since reports closed.
func (f *Feed) Wait(ctx context.Context, cursor uint64) error {
	for {
		f.mu.Lock()
		if f.total > cursor || f.closed {
			f.mu.Unlock()
			return nil
		}
		wake := f.wake
		f.mu.Unlock()
		select {
		case <-wake:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}
