package trace

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// JSONL writes one JSON object per event, one event per line — the
// `discoverxfd -trace=<file>` format. Events are encoded in emission
// order under a mutex, so a serial run's trace is deterministic up to
// the timestamps (ValidateJSONL and the determinism tests strip the
// `t` field). Write errors latch: the first one is kept and every
// later event is dropped, so a full disk cannot wedge or crash a run;
// check Err after the run.
//
// JSONL performs no buffering of its own — wrap the writer in a
// bufio.Writer (and flush it) when tracing to a file.
type JSONL struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error // guarded by mu
	now func() time.Time
}

// NewJSONL returns a JSONL tracer writing to w.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{enc: json.NewEncoder(w), now: time.Now}
}

// Emit stamps the event's time and writes it as one JSON line.
func (j *JSONL) Emit(ev *Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	ev.Time = j.now()
	j.err = j.enc.Encode(ev)
}

// Err returns the first write error, if any.
func (j *JSONL) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}
