// Package discoverxfd is a library for discovering XML functional
// dependencies (XML FDs), XML keys, and the data redundancies they
// indicate, directly from XML data. It implements the DiscoverXFD
// system of Yu & Jagadish, "Efficient Discovery of XML Data
// Redundancies", VLDB 2006.
//
// # Quickstart
//
//	doc, err := discoverxfd.LoadDocumentFile("warehouse.xml")
//	if err != nil { ... }
//	res, err := discoverxfd.Discover(doc, nil, nil) // schema inferred
//	if err != nil { ... }
//	for _, r := range res.Redundancies {
//		fmt.Println(r)
//	}
//
// Discovered constraints are reported in the paper's notation: an FD
// such as
//
//	{../contact/name, ./ISBN} -> ./price w.r.t. C(/warehouse/state/store/book)
//
// reads "for any two books (generalized tree tuples of the class
// pivoted at /warehouse/state/store/book), if they agree on their
// store's name and on their ISBN, they agree on their price". Paths
// are relative to the pivot; a path naming a set element (such as
// ./author) compares the whole unordered collection, which is the
// paper's generalization beyond earlier XML FD notions.
//
// The underlying machinery — schema model, data trees, hierarchical
// representation, partitions, the lattice algorithms — lives in the
// internal packages; this package re-exports the types a client
// needs.
package discoverxfd

import (
	"context"
	"fmt"
	"io"
	"time"

	"discoverxfd/internal/core"
	"discoverxfd/internal/datatree"
	"discoverxfd/internal/relation"
	"discoverxfd/internal/schema"
	"discoverxfd/internal/source"
	"discoverxfd/internal/source/jsondoc"
	"discoverxfd/internal/trace"
)

// Re-exported model types.
type (
	// Document is a parsed XML document in the paper's data-tree
	// model (Definition 2).
	Document = datatree.Tree
	// Node is one data node of a Document.
	Node = datatree.Node
	// Schema is the nested-relational schema model (Definition 1).
	Schema = schema.Schema
	// Path is an absolute element path such as
	// /warehouse/state/store.
	Path = schema.Path
	// RelPath is a pivot-relative path such as ./ISBN or
	// ../contact/name.
	RelPath = schema.RelPath
	// FD is a discovered XML functional dependency (Definition 7).
	FD = core.FD
	// Key is a discovered XML key (Definition 8).
	Key = core.Key
	// Redundancy is a satisfied interesting FD whose LHS is not a
	// key, with witness counts (Definition 11).
	Redundancy = core.Redundancy
	// Result is the output of Discover.
	Result = core.Result
	// Stats carries discovery instrumentation.
	Stats = core.Stats
	// Evaluation is the outcome of checking one FD directly against
	// the data (Evaluate).
	Evaluation = core.Evaluation
	// Hierarchy is the hierarchical representation of a document (one
	// relation per essential tuple class).
	Hierarchy = relation.Hierarchy
	// RootMismatchError reports input whose root label does not match
	// the schema root; classify with errors.As.
	RootMismatchError = relation.RootMismatchError
	// Metrics is an Engine's cumulative counter snapshot (see
	// Engine.Metrics).
	Metrics = core.Metrics
	// Tracer receives a run's trace events (see Options.Trace). Use
	// NewJSONLTracer or NewProgressTracer for the built-in backends,
	// or implement the one-method interface; implementations must be
	// safe for concurrent use under Options.Parallel.
	Tracer = trace.Tracer
	// TraceEvent is one typed trace event; see internal/trace for the
	// schema (also documented in docs/INTERNALS.md §12).
	TraceEvent = trace.Event
)

// Re-exported sentinel errors, for classification with errors.Is
// through any wrapping the call path adds.
var (
	// ErrEmptyTree is returned when a document has no root node.
	ErrEmptyTree = relation.ErrEmptyTree
	// ErrBuilderFinished is returned by streaming-builder methods
	// invoked after the hierarchy has been finalized.
	ErrBuilderFinished = relation.ErrBuilderFinished
	// ErrUnknownFormat is returned by LoadDocumentFile when neither
	// the file extension nor the content matches a registered document
	// format (XML, JSON).
	ErrUnknownFormat = source.ErrUnknownFormat
)

// Options configures Discover.
type Options struct {
	// MaxLHS bounds the number of attributes drawn from one hierarchy
	// level into an FD's LHS; 0 means unbounded.
	MaxLHS int
	// IntraOnly restricts discovery to intra-relation FDs (no
	// partition targets), i.e. DiscoverFD per relation.
	IntraOnly bool
	// NoSetElements omits set pseudo-attributes, restricting the FD
	// language to the earlier tuple-based notion (no FDs over set
	// elements such as ./author).
	NoSetElements bool
	// OrderedSets compares set elements as ordered lists instead of
	// unordered collections (the Section 4.5 ablation). Off by
	// default, matching the paper's design choice.
	OrderedSets bool
	// KeepConstantFDs reports FDs with an empty LHS (document-wide
	// constant elements); usually noise, off by default.
	KeepConstantFDs bool
	// ApproxError, when positive, additionally reports approximate
	// intra-relation FDs: constraints that hold after removing at
	// most this fraction of a class's tuples (TANE's g3 measure).
	// Useful on dirty data, where a near-constraint still marks a
	// redundancy worth refining. Results land in Result.ApproxFDs.
	ApproxError float64
	// Parallel discovers independent relation subtrees concurrently;
	// results are identical to the serial run. Workers are
	// panic-safe: a panic in one subtree surfaces as an error from
	// Discover, not a process crash.
	Parallel bool
	// Limits bounds the resources the call may consume (input size,
	// search depth, wall-clock time). See the Limits type for the
	// error-versus-graceful-truncation contract. The zero value
	// applies only the parser's default nesting bound.
	Limits Limits
	// Trace receives the run's trace events: pipeline stage spans,
	// per-relation traversal spans, per-lattice-level progress,
	// partition-target lifecycle, governor decisions, and constraint
	// checks. nil (the default) disables tracing at no measurable
	// cost. Combine backends with trace.Multi via NewJSONLTracer and
	// NewProgressTracer; traced and untraced runs produce identical
	// Results.
	Trace Tracer
	// RelationHook, when non-nil, is invoked just before each
	// relation's lattice traversal with the relation's pivot path. It
	// is a testing and fault-injection seam (the chaos suite uses it
	// to panic inside a chosen engine stage); production callers leave
	// it nil. The hook runs on discovery worker goroutines and must be
	// safe for concurrent use under Parallel.
	RelationHook func(pivot Path)
}

// coreOptions maps the public options onto the engine's, carrying the
// absolute wall-clock deadline computed at the call boundary.
func (o *Options) coreOptions(deadline time.Time) core.Options {
	if o == nil {
		o = &Options{}
	}
	return core.Options{
		MaxLHS:            o.MaxLHS,
		NoInterRelation:   o.IntraOnly,
		PropagatePartial:  true,
		KeepConstantFDs:   o.KeepConstantFDs,
		ApproxError:       o.ApproxError,
		Parallel:          o.Parallel,
		MaxLatticeLevel:   o.Limits.MaxLatticeLevel,
		MaxPartitionBytes: o.Limits.MaxPartitionBytes,
		Deadline:          deadline,
		Tracer:            o.Trace,
		RelationHook:      o.RelationHook,
	}
}

func (o *Options) relationOptions(deadline time.Time) relation.Options {
	if o == nil {
		o = &Options{}
	}
	return relation.Options{
		OrderedSets:     o.OrderedSets,
		DisableSetAttrs: o.NoSetElements,
		MaxTuples:       o.Limits.MaxTuples,
		Deadline:        deadline,
		Parse:           o.Limits.parseLimits(),
	}
}

// LoadDocument parses an XML document from r under the parser's
// default limits. Use LoadDocumentContext for explicit limits or
// cancellation.
func LoadDocument(r io.Reader) (*Document, error) {
	return datatree.ParseXML(r)
}

// LoadDocumentContext parses an XML document from r under the parse
// limits of opts (MaxDepth, MaxNodes), checking ctx periodically.
// Documents exceeding a parse limit fail fast with a "datatree:"
// error — a deep-nesting or entity-bloat bomb never exhausts memory.
func LoadDocumentContext(ctx context.Context, r io.Reader, opts *Options) (*Document, error) {
	return NewEngine(opts).LoadDocument(ctx, r)
}

// LoadDocumentFile parses a document from a file, detecting the
// format from the file extension (.xml, .json) or — when the
// extension is not registered — from the first bytes of the content.
// Unrecognized input fails with ErrUnknownFormat.
func LoadDocumentFile(path string) (*Document, error) {
	return LoadDocumentFileContext(context.Background(), path, nil)
}

// LoadDocumentFileContext is LoadDocumentFile with parse limits and
// cancellation (see LoadDocumentContext).
func LoadDocumentFileContext(ctx context.Context, path string, opts *Options) (*Document, error) {
	return NewEngine(opts).LoadDocumentFile(ctx, path)
}

// LoadJSON parses a JSON document from r into the same data-tree
// model as LoadDocument, so everything downstream — schema inference,
// hierarchy construction, discovery — is format-agnostic. Arrays
// become set elements (declared repeatable even with one member),
// nested objects become singleton records, scalars become leaves with
// their literal spelling preserved, and explicit null stays
// distinguishable from a missing member. See internal/source/jsondoc
// for the full mapping.
func LoadJSON(r io.Reader) (*Document, error) {
	return jsondoc.Parse(r)
}

// LoadJSONContext is LoadJSON with parse limits and cancellation (see
// LoadDocumentContext).
func LoadJSONContext(ctx context.Context, r io.Reader, opts *Options) (*Document, error) {
	return NewEngine(opts).LoadJSON(ctx, r)
}

// ParseDocument parses an XML document from a string.
func ParseDocument(s string) (*Document, error) {
	return datatree.ParseXMLString(s)
}

// ParseSchema reads a schema in the nested-relational text notation
// (see internal/schema.Parse for the grammar):
//
//	warehouse: Rcd
//	  state: SetOf Rcd
//	    name: str
//	    ...
func ParseSchema(text string) (*Schema, error) {
	return schema.Parse(text)
}

// InferSchema derives a schema from a document: elements repeated
// under one parent become set elements, leaf types are the most
// specific of int/float/str their values admit.
func InferSchema(doc *Document) (*Schema, error) {
	return datatree.InferSchema(doc)
}

// Conform checks that a document conforms to a schema and returns the
// first violation, or nil.
func Conform(doc *Document, s *Schema) error {
	return datatree.Conform(doc, s)
}

// BuildHierarchy constructs the hierarchical representation of the
// document (one relation per essential tuple class). Most callers
// can use Discover directly; the hierarchy is exposed for Evaluate
// and for inspecting tuple classes.
func BuildHierarchy(doc *Document, s *Schema, opts *Options) (*Hierarchy, error) {
	return BuildHierarchyContext(context.Background(), doc, s, opts)
}

// BuildHierarchyContext is BuildHierarchy with cancellation and
// resource budgets: cancelling ctx aborts with an error, while
// exhausting Limits.MaxTuples or Limits.Deadline stops ingestion
// early and returns a consistent hierarchy marked truncated.
func BuildHierarchyContext(ctx context.Context, doc *Document, s *Schema, opts *Options) (*Hierarchy, error) {
	return NewEngine(opts).BuildHierarchy(ctx, doc, s)
}

// buildHierarchyAt carries the absolute deadline computed at whichever
// public entry point owns the whole-call budget.
func buildHierarchyAt(ctx context.Context, doc *Document, s *Schema, opts *Options, deadline time.Time) (*Hierarchy, error) {
	if s == nil {
		inferred, err := datatree.InferSchema(doc)
		if err != nil {
			return nil, err
		}
		s = inferred
	} else if err := datatree.Conform(doc, s); err != nil {
		// Surface a mismatched root as the typed sentinel so callers
		// (and the CLI exit-code classification) can errors.As it;
		// conformance reports it first, with an untyped error.
		if doc != nil && doc.Root != nil && doc.Root.Label != s.Root {
			return nil, &relation.RootMismatchError{What: "tree", Root: doc.Root.Label, SchemaRoot: s.Root}
		}
		return nil, err
	}
	return relation.BuildContext(ctx, doc, s, opts.relationOptions(deadline))
}

// BuildHierarchyStream constructs the hierarchical representation
// directly from an XML stream without materializing the document:
// memory stays proportional to the representation plus the largest
// single root-child subtree. The schema is required (inference needs
// the whole document). Streamed hierarchies drop node-level detail,
// so discovery and Evaluate work identically but ApplyRefinement and
// DetectAnomalies need the in-memory BuildHierarchy.
func BuildHierarchyStream(r io.Reader, s *Schema, opts *Options) (*Hierarchy, error) {
	return BuildHierarchyStreamContext(context.Background(), r, s, opts)
}

// BuildHierarchyStreamContext is BuildHierarchyStream with
// cancellation and resource budgets (see BuildHierarchyContext; parse
// limits apply to the stream as it is read).
func BuildHierarchyStreamContext(ctx context.Context, r io.Reader, s *Schema, opts *Options) (*Hierarchy, error) {
	return NewEngine(opts).BuildHierarchyStream(ctx, r, s)
}

func buildHierarchyStreamAt(ctx context.Context, r io.Reader, s *Schema, opts *Options, deadline time.Time) (*Hierarchy, error) {
	if s == nil {
		return nil, fmt.Errorf("discoverxfd: streaming requires an explicit schema")
	}
	return relation.BuildStreamContext(ctx, r, s, opts.relationOptions(deadline))
}

// DiscoverStream runs DiscoverXFD over an XML stream (see
// BuildHierarchyStream).
func DiscoverStream(r io.Reader, s *Schema, opts *Options) (*Result, error) {
	return DiscoverStreamContext(context.Background(), r, s, opts)
}

// DiscoverStreamContext is DiscoverStream with cancellation and
// resource budgets. The Limits.Deadline budget covers the whole call:
// streaming ingestion and discovery share it.
func DiscoverStreamContext(ctx context.Context, r io.Reader, s *Schema, opts *Options) (*Result, error) {
	return NewEngine(opts).DiscoverStream(ctx, r, s)
}

// Discover runs DiscoverXFD on the document: it finds all minimal
// interesting XML FDs and Keys and derives the redundancies the FDs
// indicate. If s is nil the schema is inferred from the data; opts
// may be nil for defaults.
func Discover(doc *Document, s *Schema, opts *Options) (*Result, error) {
	return DiscoverContext(context.Background(), doc, s, opts)
}

// DiscoverContext is Discover with cancellation and resource budgets.
// Cancelling ctx aborts with an error; exhausting a Limits budget
// (deadline, tuple cap, lattice cap) instead returns the partial
// Result found so far with Stats.Truncated and Stats.TruncatedReason
// set. The Limits.Deadline budget covers hierarchy construction and
// discovery together.
func DiscoverContext(ctx context.Context, doc *Document, s *Schema, opts *Options) (*Result, error) {
	return NewEngine(opts).Discover(ctx, doc, s)
}

// DiscoverHierarchy runs DiscoverXFD on a prebuilt hierarchy.
func DiscoverHierarchy(h *Hierarchy, opts *Options) (*Result, error) {
	return DiscoverHierarchyContext(context.Background(), h, opts)
}

// DiscoverHierarchyContext is DiscoverHierarchy with cancellation and
// resource budgets (see DiscoverContext).
func DiscoverHierarchyContext(ctx context.Context, h *Hierarchy, opts *Options) (*Result, error) {
	return NewEngine(opts).DiscoverHierarchy(ctx, h)
}

// Evaluate checks a single XML FD ⟨class, lhs, rhs⟩ directly against
// a hierarchy, independent of discovery: whether it holds (strong
// satisfaction), whether its LHS is a key, and how many redundant
// values it witnesses.
func Evaluate(h *Hierarchy, class Path, lhs []RelPath, rhs RelPath) (Evaluation, error) {
	return EvaluateContext(context.Background(), h, class, lhs, rhs)
}

// EvaluateContext is Evaluate with cancellation, checked periodically
// over the class's tuples.
func EvaluateContext(ctx context.Context, h *Hierarchy, class Path, lhs []RelPath, rhs RelPath) (Evaluation, error) {
	return NewEngine(nil).Evaluate(ctx, h, class, lhs, rhs)
}
