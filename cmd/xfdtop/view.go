package main

// view.go is xfdtop's pure half: parse one scrape (a /metrics
// exposition plus a /v1/stats document) into a snapshot, derive the
// displayed rates and quantiles from two consecutive snapshots, and
// render the result as a text block. Everything here is deterministic
// and covered by tests; main.go only polls and repaints.

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"time"

	"discoverxfd/internal/server"
	"discoverxfd/internal/telemetry"
	"encoding/json"
)

// snapshot is one observation of the server: the parsed exposition
// and the stats document, stamped with the local scrape time.
type snapshot struct {
	when    time.Time
	samples []telemetry.Sample
	stats   server.StatsSnapshot
}

// parseSnapshot decodes one scrape. Either reader may be nil when the
// corresponding endpoint failed; the snapshot then carries only the
// other half.
func parseSnapshot(when time.Time, metrics, stats io.Reader) (*snapshot, error) {
	s := &snapshot{when: when}
	if metrics != nil {
		samples, err := telemetry.ParseExposition(metrics)
		if err != nil {
			return nil, fmt.Errorf("metrics: %w", err)
		}
		s.samples = samples
	}
	if stats != nil {
		if err := json.NewDecoder(stats).Decode(&s.stats); err != nil {
			return nil, fmt.Errorf("stats: %w", err)
		}
	}
	return s, nil
}

// sum adds up every sample with the given name, regardless of labels.
func (s *snapshot) sum(name string) float64 {
	var total float64
	for _, smp := range s.samples {
		if smp.Name == name {
			total += smp.Value
		}
	}
	return total
}

// buckets folds the named histogram's _bucket series (summed across
// label sets) into le → cumulative count, returning the bounds sorted
// ascending with +Inf last.
func (s *snapshot) buckets(name string) (bounds []float64, counts map[float64]float64) {
	counts = map[float64]float64{}
	for _, smp := range s.samples {
		if smp.Name != name+"_bucket" {
			continue
		}
		le, err := strconv.ParseFloat(strings.Replace(smp.Label("le"), "+Inf", "inf", 1), 64)
		if err != nil {
			continue
		}
		if _, seen := counts[le]; !seen {
			bounds = append(bounds, le)
		}
		counts[le] += smp.Value
	}
	sort.Float64s(bounds)
	return bounds, counts
}

// view is one rendered frame's data.
type view struct {
	When     time.Time
	RPS      float64 // requests per second over the window
	Requests float64 // lifetime total
	P50Ms    float64 // window quantiles (lifetime on the first frame)
	P95Ms    float64
	P99Ms    float64
	Running  int
	Queued   int
	Jobs     int
	Docs     int
	Draining bool
	Tenants  []tenantRow
}

// tenantRow is one tenant's line: live load plus cumulative sheds by
// reason.
type tenantRow struct {
	Name    string
	Running int
	Queued  int
	Sheds   int64
	Reasons string // "tenant_quota:3 queue_full:1", sorted by reason
}

const durationMetric = "xfd_http_request_duration_seconds"

// derive computes a frame from the current snapshot and the previous
// one (nil on the first poll: rates read 0 and quantiles cover the
// server's lifetime instead of the window).
func derive(prev, cur *snapshot) view {
	v := view{
		When:     cur.when,
		Requests: cur.sum("xfd_http_requests_total"),
		Running:  cur.stats.Running,
		Queued:   cur.stats.Queued,
		Jobs:     cur.stats.Jobs,
		Docs:     cur.stats.Documents,
		Draining: cur.stats.Draining,
	}
	bounds, counts := cur.buckets(durationMetric)
	if prev != nil {
		if dt := cur.when.Sub(prev.when).Seconds(); dt > 0 {
			v.RPS = (v.Requests - prev.sum("xfd_http_requests_total")) / dt
		}
		// Window quantiles: the histogram is cumulative, so the window's
		// distribution is the bucket-wise difference.
		_, prevCounts := prev.buckets(durationMetric)
		for le := range counts {
			counts[le] -= prevCounts[le]
		}
	}
	v.P50Ms = quantileMs(0.50, bounds, counts)
	v.P95Ms = quantileMs(0.95, bounds, counts)
	v.P99Ms = quantileMs(0.99, bounds, counts)

	names := make([]string, 0, len(cur.stats.Tenants))
	for name := range cur.stats.Tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ts := cur.stats.Tenants[name]
		row := tenantRow{Name: name, Running: ts.Running, Queued: ts.Queued}
		reasons := make([]string, 0, len(ts.Sheds))
		for reason := range ts.Sheds {
			reasons = append(reasons, reason)
		}
		sort.Strings(reasons)
		var parts []string
		for _, reason := range reasons {
			row.Sheds += ts.Sheds[reason]
			parts = append(parts, fmt.Sprintf("%s:%d", reason, ts.Sheds[reason]))
		}
		row.Reasons = strings.Join(parts, " ")
		v.Tenants = append(v.Tenants, row)
	}
	return v
}

// quantileMs estimates the q-th latency quantile in milliseconds from
// a cumulative histogram, with Prometheus's histogram_quantile
// interpolation: linear within the bucket that crosses the target
// rank, the highest finite bound when the rank lands in +Inf, and NaN
// for an empty histogram.
func quantileMs(q float64, bounds []float64, counts map[float64]float64) float64 {
	if len(bounds) == 0 {
		return math.NaN()
	}
	// The last bound's cumulative count is the total — whether it is
	// +Inf or the histogram was scraped without one.
	total := counts[bounds[len(bounds)-1]]
	if total <= 0 {
		return math.NaN()
	}
	rank := q * total
	lower, lowerCount := 0.0, 0.0
	for _, le := range bounds {
		c := counts[le]
		if c >= rank {
			if math.IsInf(le, 1) {
				// The rank lands past every finite bound; report the
				// highest finite one, as histogram_quantile does.
				return lower * 1000
			}
			if c == lowerCount {
				return le * 1000
			}
			return (lower + (le-lower)*(rank-lowerCount)/(c-lowerCount)) * 1000
		}
		lower, lowerCount = le, c
	}
	return lower * 1000
}

// fmtMs renders a millisecond value for the frame ("-" when no data).
func fmtMs(ms float64) string {
	if math.IsNaN(ms) {
		return "-"
	}
	return strconv.FormatFloat(ms, 'f', 1, 64) + "ms"
}

// render draws one frame.
func (v view) render() string {
	var b strings.Builder
	state := "serving"
	if v.Draining {
		state = "DRAINING"
	}
	fmt.Fprintf(&b, "xfdtop  %s  [%s]\n", v.When.Format("15:04:05"), state)
	fmt.Fprintf(&b, "req %.0f total  %.1f rps   p50 %s  p95 %s  p99 %s\n",
		v.Requests, v.RPS, fmtMs(v.P50Ms), fmtMs(v.P95Ms), fmtMs(v.P99Ms))
	fmt.Fprintf(&b, "running %d  queued %d  jobs %d  documents %d\n", v.Running, v.Queued, v.Jobs, v.Docs)
	if len(v.Tenants) > 0 {
		fmt.Fprintf(&b, "%-16s %7s %7s %7s  %s\n", "TENANT", "RUN", "QUEUE", "SHED", "REASONS")
		for _, row := range v.Tenants {
			name := row.Name
			if name == "" {
				name = "(default)"
			}
			fmt.Fprintf(&b, "%-16s %7d %7d %7d  %s\n", name, row.Running, row.Queued, row.Sheds, row.Reasons)
		}
	}
	return b.String()
}
