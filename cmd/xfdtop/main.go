// Command xfdtop is a polling terminal view over a running xfdd: it
// scrapes GET /metrics and GET /v1/stats every interval and repaints
// one screenful — live request rate, latency quantiles interpolated
// from the duration histogram (over the window between polls),
// admission load (running/queued), job and resident-document counts,
// the drain state, and a per-tenant table of load and sheds by
// reason.
//
// Usage:
//
//	xfdtop -addr http://localhost:8080
//	xfdtop -addr http://localhost:8080 -interval 1s -count 10 -plain
//
// -count 0 polls until interrupted. -plain appends frames instead of
// clearing the screen (for logs and pipes). A failed poll prints the
// error and keeps polling; xfdtop exits non-zero only for bad usage.
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"
)

func main() {
	addr := flag.String("addr", "http://localhost:8080", "base URL of the xfdd server")
	interval := flag.Duration("interval", 2*time.Second, "polling interval")
	count := flag.Int("count", 0, "number of polls (0 = until interrupted)")
	plain := flag.Bool("plain", false, "append frames instead of clearing the screen")
	flag.Parse()
	if flag.NArg() != 0 || *interval <= 0 {
		flag.Usage()
		os.Exit(2)
	}

	base := strings.TrimSuffix(*addr, "/")
	client := &http.Client{Timeout: 10 * time.Second}
	var prev *snapshot
	for i := 0; *count == 0 || i < *count; i++ {
		if i > 0 {
			time.Sleep(*interval)
		}
		cur, err := poll(client, base)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xfdtop: %v\n", err)
			continue
		}
		frame := derive(prev, cur).render()
		if !*plain {
			fmt.Print("\x1b[H\x1b[2J") // cursor home + clear
		}
		fmt.Print(frame)
		prev = cur
	}
}

// poll scrapes both endpoints. /v1/stats failing is tolerated (the
// frame shows metrics only); /metrics failing fails the poll.
func poll(client *http.Client, base string) (*snapshot, error) {
	metrics, err := get(client, base+"/metrics")
	if err != nil {
		return nil, err
	}
	defer metrics.Close()
	when := time.Now()
	stats, err := get(client, base+"/v1/stats")
	if err != nil {
		return parseSnapshot(when, metrics, nil)
	}
	defer stats.Close()
	return parseSnapshot(when, metrics, stats)
}

func get(client *http.Client, url string) (io.ReadCloser, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, fmt.Errorf("%s: %s", url, resp.Status)
	}
	return resp.Body, nil
}
