package main

import (
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"discoverxfd/internal/server"
)

const scrapeT0 = `# HELP xfd_http_requests_total HTTP requests served.
# TYPE xfd_http_requests_total counter
xfd_http_requests_total{route="/v1/discover",tenant="a",code="2xx"} 10
xfd_http_requests_total{route="/healthz",tenant="",code="2xx"} 5
# HELP xfd_http_request_duration_seconds Request latency.
# TYPE xfd_http_request_duration_seconds histogram
xfd_http_request_duration_seconds_bucket{route="/v1/discover",le="0.01"} 0
xfd_http_request_duration_seconds_bucket{route="/v1/discover",le="0.1"} 0
xfd_http_request_duration_seconds_bucket{route="/v1/discover",le="+Inf"} 0
xfd_http_request_duration_seconds_sum{route="/v1/discover"} 0
xfd_http_request_duration_seconds_count{route="/v1/discover"} 0
`

const scrapeT1 = `# HELP xfd_http_requests_total HTTP requests served.
# TYPE xfd_http_requests_total counter
xfd_http_requests_total{route="/v1/discover",tenant="a",code="2xx"} 25
xfd_http_requests_total{route="/healthz",tenant="",code="2xx"} 10
# HELP xfd_http_request_duration_seconds Request latency.
# TYPE xfd_http_request_duration_seconds histogram
xfd_http_request_duration_seconds_bucket{route="/v1/discover",le="0.01"} 50
xfd_http_request_duration_seconds_bucket{route="/v1/discover",le="0.1"} 100
xfd_http_request_duration_seconds_bucket{route="/v1/discover",le="+Inf"} 100
xfd_http_request_duration_seconds_sum{route="/v1/discover"} 4.2
xfd_http_request_duration_seconds_count{route="/v1/discover"} 100
`

const statsT1 = `{"running":2,"queued":1,"jobs":3,"documents":1,"draining":true,
  "tenants":{"a":{"running":2,"queued":1,"sheds":{"tenant_quota":3,"queue_full":1}},
             "b":{"running":0,"queued":0,"sheds":{"draining":2}}}}`

func snap(t *testing.T, when time.Time, metrics, stats string) *snapshot {
	t.Helper()
	var statsReader *strings.Reader
	if stats != "" {
		statsReader = strings.NewReader(stats)
	}
	var s *snapshot
	var err error
	if statsReader == nil {
		s, err = parseSnapshot(when, strings.NewReader(metrics), nil)
	} else {
		s, err = parseSnapshot(when, strings.NewReader(metrics), statsReader)
	}
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestDeriveRatesAndQuantiles(t *testing.T) {
	t0 := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	prev := snap(t, t0, scrapeT0, "")
	cur := snap(t, t0.Add(10*time.Second), scrapeT1, statsT1)

	v := derive(prev, cur)
	// 30 requests total arrived over 10s.
	if v.RPS != 2.0 {
		t.Errorf("rps = %v, want 2.0 ((25+10-10-5)/10s)", v.RPS)
	}
	if v.Requests != 35 {
		t.Errorf("requests = %v, want 35", v.Requests)
	}
	// Window histogram: 50 ≤ 10ms, 100 ≤ 100ms. The median rank (50)
	// lands exactly on the 10ms bound; p95 interpolates to 91ms.
	if v.P50Ms != 10 {
		t.Errorf("p50 = %v, want 10ms", v.P50Ms)
	}
	if math.Abs(v.P95Ms-91) > 0.01 {
		t.Errorf("p95 = %v, want 91ms", v.P95Ms)
	}
	if !v.Draining || v.Running != 2 || v.Queued != 1 || v.Jobs != 3 || v.Docs != 1 {
		t.Errorf("gauges = %+v, want the stats document's values", v)
	}

	if len(v.Tenants) != 2 || v.Tenants[0].Name != "a" || v.Tenants[1].Name != "b" {
		t.Fatalf("tenants = %+v, want sorted a, b", v.Tenants)
	}
	if v.Tenants[0].Sheds != 4 || v.Tenants[0].Reasons != "queue_full:1 tenant_quota:3" {
		t.Errorf("tenant a = %+v, want 4 sheds with sorted reasons", v.Tenants[0])
	}
}

func TestDeriveFirstFrame(t *testing.T) {
	cur := snap(t, time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC), scrapeT1, statsT1)
	v := derive(nil, cur)
	if v.RPS != 0 {
		t.Errorf("first-frame rps = %v, want 0", v.RPS)
	}
	if v.P50Ms != 10 { // lifetime histogram
		t.Errorf("first-frame p50 = %v, want 10ms", v.P50Ms)
	}
}

func TestQuantileEdgeCases(t *testing.T) {
	if q := quantileMs(0.5, nil, nil); !math.IsNaN(q) {
		t.Errorf("no buckets → %v, want NaN", q)
	}
	inf := math.Inf(1)
	empty := map[float64]float64{0.01: 0, inf: 0}
	if q := quantileMs(0.5, []float64{0.01, inf}, empty); !math.IsNaN(q) {
		t.Errorf("empty histogram → %v, want NaN", q)
	}
	// Everything beyond the last finite bound: report that bound.
	tail := map[float64]float64{0.01: 0, inf: 7}
	if q := quantileMs(0.99, []float64{0.01, inf}, tail); q != 10 {
		t.Errorf("+Inf-only histogram → %v, want the 10ms bound", q)
	}
}

func TestRenderFrame(t *testing.T) {
	cur := snap(t, time.Date(2026, 8, 8, 12, 0, 10, 0, time.UTC), scrapeT1, statsT1)
	out := derive(nil, cur).render()
	for _, want := range []string{
		"DRAINING", "req 35 total", "running 2", "queued 1",
		"TENANT", "queue_full:1 tenant_quota:3", "draining:2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q:\n%s", want, out)
		}
	}
	// The empty-string tenant renders with a placeholder name.
	v := view{Tenants: []tenantRow{{Name: ""}}}
	if out := v.render(); !strings.Contains(out, "(default)") {
		t.Errorf("empty tenant not renamed:\n%s", out)
	}
}

// TestPollLiveServer points poll at a real in-process xfdd and checks
// a frame derives end to end from live scrapes.
func TestPollLiveServer(t *testing.T) {
	srv := server.New(context.Background(), server.Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body := "<library><shelf><room>r</room><book><isbn>i</isbn></book></shelf></library>"
	resp, err := http.Post(ts.URL+"/v1/discover", "application/xml", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("discover = %d", resp.StatusCode)
	}

	cur, err := poll(http.DefaultClient, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	v := derive(nil, cur)
	if v.Requests < 1 {
		t.Errorf("live requests = %v, want ≥ 1", v.Requests)
	}
	if out := v.render(); !strings.Contains(out, "serving") {
		t.Errorf("live frame:\n%s", out)
	}
}
