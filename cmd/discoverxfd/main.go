// Command discoverxfd discovers XML functional dependencies, keys,
// and data redundancies in an XML or JSON document.
//
// Usage:
//
//	discoverxfd [flags] file.{xml,json}
//
// With no -schema flag the schema is inferred from the data (elements
// repeated under one parent become set elements). The report lists
// redundancy-indicating FDs per tuple class with witness counts, then
// keys, in the paper's path notation.
//
// The document format is detected from the file extension or, when
// the extension is not registered, from the first bytes of the
// content; -format=xml or -format=json forces it. JSON documents map
// onto the same data-tree model (arrays become set elements, nested
// objects singleton records, scalars leaves), so discovery is
// format-agnostic.
//
// Resource flags bound what a run may consume: -maxdepth and
// -maxnodes reject oversized or hostile input with an error, while
// -timeout and -maxtuples degrade gracefully — the run stops early
// and the report is marked PARTIAL RESULT.
//
// Observability flags: -trace=<file> writes the run's trace as JSONL
// events (stage spans, per-relation spans, lattice-level progress,
// target lifecycle, governor decisions — see docs/INTERNALS.md §12),
// -v logs run/stage/relation progress to stderr, -vv adds throttled
// per-level and per-target detail, and -metrics prints the engine's
// counter snapshot as JSON on stderr after the run.
//
// Exit status is 0 on success (including a partial result), 1 on a
// runtime error (unreadable file, malformed input, exceeded parse
// limit), and 2 on a usage error (bad flags, missing argument,
// -stream without -schema, a negative limit flag, a document in no
// recognizable format, or input whose shape contradicts the
// schema — an empty document or a mismatched root, classified via
// errors.Is/errors.As on the library's sentinel errors).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"discoverxfd"
	"discoverxfd/internal/cliutil"
)

// tracing is the run's tracer stack; fatal flushes it before exiting
// so a failed run still leaves a valid (truncated) trace file.
var tracing *cliutil.Tracing

func main() {
	schemaPath := flag.String("schema", "", "schema file in nested-relational notation (default: infer from data)")
	format := flag.String("format", "auto", "document format: auto, xml, or json (auto detects from extension or content)")
	intraOnly := flag.Bool("intra", false, "intra-relation FDs only (skip partition targets)")
	noSets := flag.Bool("nosets", false, "disable set-element FDs (earlier tuple-based notion)")
	ordered := flag.Bool("ordered", false, "compare set elements as ordered lists (Section 4.5 ablation)")
	maxLHS := flag.Int("maxlhs", 0, "bound on LHS attributes per hierarchy level (0 = unbounded)")
	constants := flag.Bool("constants", false, "also report constant-element FDs (empty LHS)")
	printSchema := flag.Bool("printschema", false, "print the (inferred or parsed) schema and exit")
	approx := flag.Float64("approx", 0, "also report approximate FDs within this g3 error budget (e.g. 0.02)")
	suggest := flag.Bool("suggest", false, "print schema-refinement suggestions after the report")
	jsonOut := flag.Bool("json", false, "emit the result as JSON instead of the text report")
	parallel := flag.Bool("parallel", false, "discover independent subtrees concurrently")
	stream := flag.Bool("stream", false, "stream the document instead of materializing it (requires -schema; disables -suggest)")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the whole run; on expiry the partial result found so far is reported (0 = none)")
	maxNodes := flag.Int("maxnodes", 0, "reject documents with more than this many data nodes (0 = unlimited)")
	maxDepth := flag.Int("maxdepth", 0, "reject documents nested deeper than this many elements (0 = parser default)")
	maxTuples := flag.Int("maxtuples", 0, "ingest at most this many tuples, truncating the result (0 = unlimited)")
	tracePath := flag.String("trace", "", "write the run's trace events to this file as JSONL")
	verbose := flag.Bool("v", false, "log run/stage/relation progress to stderr")
	veryVerbose := flag.Bool("vv", false, "like -v plus throttled per-level and per-target detail")
	metrics := flag.Bool("metrics", false, "print the engine's metrics snapshot as JSON on stderr after the run")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: discoverxfd [flags] file.{xml,json}\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	switch *format {
	case "auto", "xml", "json":
	default:
		fmt.Fprintf(os.Stderr, "discoverxfd: unknown -format %q (use auto, xml, or json)\n", *format)
		os.Exit(2)
	}
	tr, err := cliutil.Open(*tracePath, *verbose, *veryVerbose)
	if err != nil {
		fatal(err)
	}
	tracing = tr
	opts := &discoverxfd.Options{
		MaxLHS:          *maxLHS,
		IntraOnly:       *intraOnly,
		NoSetElements:   *noSets,
		OrderedSets:     *ordered,
		KeepConstantFDs: *constants,
		ApproxError:     *approx,
		Parallel:        *parallel,
		Limits: discoverxfd.Limits{
			MaxDepth:  *maxDepth,
			MaxNodes:  *maxNodes,
			MaxTuples: *maxTuples,
			Deadline:  *timeout,
		},
		Trace: tracing.Tracer(),
	}
	eng := discoverxfd.NewEngine(opts)
	defer finish(eng, *metrics)
	if *stream {
		if *schemaPath == "" {
			fmt.Fprintf(os.Stderr, "discoverxfd: -stream requires -schema (inference needs the whole document)\n")
			os.Exit(2)
		}
		if *format == "json" {
			fmt.Fprintf(os.Stderr, "discoverxfd: -stream supports only XML input (JSON documents are materialized)\n")
			os.Exit(2)
		}
		runStream(eng, flag.Arg(0), *schemaPath, *jsonOut)
		return
	}

	doc, err := eng.LoadDocumentFileAs(context.Background(), flag.Arg(0), *format)
	if err != nil {
		fatal(err)
	}
	var s *discoverxfd.Schema
	if *schemaPath != "" {
		text, err := os.ReadFile(*schemaPath)
		if err != nil {
			fatal(err)
		}
		s, err = discoverxfd.ParseSchema(string(text))
		if err != nil {
			fatal(err)
		}
	} else {
		s, err = discoverxfd.InferSchema(doc)
		if err != nil {
			fatal(err)
		}
	}
	if *printSchema {
		fmt.Print(s.String())
		return
	}

	h, err := eng.BuildHierarchy(context.Background(), doc, s)
	if err != nil {
		fatal(err)
	}
	res, err := eng.DiscoverHierarchy(context.Background(), h)
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		if err := discoverxfd.WriteJSON(os.Stdout, res); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("document: %s (%d nodes)\n\n", flag.Arg(0), doc.Size())
	if err := discoverxfd.WriteReport(os.Stdout, res); err != nil {
		fatal(err)
	}
	if len(res.ApproxFDs) > 0 {
		fmt.Printf("\nApproximate XML FDs (g3 ≤ %.3f): %d\n", *approx, len(res.ApproxFDs))
		for _, fd := range res.ApproxFDs {
			fmt.Printf("  %s\n", fd)
		}
	}
	if *suggest {
		fmt.Printf("\nSchema-refinement suggestions:\n")
		sugs := discoverxfd.SuggestRefinements(h, res)
		if len(sugs) == 0 {
			fmt.Println("  none — the document is redundancy-free")
		}
		for _, sg := range sugs {
			fmt.Printf("  %s\n", sg)
		}
	}
}

// runStream discovers over a streamed document: constant memory in
// the document size, at the cost of node-level reporting.
func runStream(eng *discoverxfd.Engine, path, schemaPath string, jsonOut bool) {
	text, err := os.ReadFile(schemaPath)
	if err != nil {
		fatal(err)
	}
	s, err := discoverxfd.ParseSchema(string(text))
	if err != nil {
		fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	res, err := eng.DiscoverStream(context.Background(), f, s)
	if err != nil {
		fatal(err)
	}
	if jsonOut {
		if err := discoverxfd.WriteJSON(os.Stdout, res); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("document: %s (streamed)\n\n", path)
	if err := discoverxfd.WriteReport(os.Stdout, res); err != nil {
		fatal(err)
	}
}

// finish flushes the trace file and, under -metrics, prints the
// engine's counter snapshot on stderr. Deferred in main so every
// normal exit path (report, -json, -stream, -printschema) runs it.
func finish(eng *discoverxfd.Engine, metrics bool) {
	if err := tracing.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "discoverxfd: %v\n", err)
		os.Exit(1)
	}
	if metrics {
		if err := cliutil.WriteMetrics(os.Stderr, eng.Metrics()); err != nil {
			fmt.Fprintf(os.Stderr, "discoverxfd: %v\n", err)
			os.Exit(1)
		}
	}
}

// fatal prints the error and exits, classifying it through any %w
// wrapping on the call path: input whose shape contradicts the schema
// is a usage error (exit 2), everything else a runtime error (exit 1).
// The trace file is flushed first so a failed run still leaves a
// valid (truncated) trace.
func fatal(err error) {
	fmt.Fprintf(os.Stderr, "discoverxfd: %v\n", err)
	if cerr := tracing.Close(); cerr != nil {
		fmt.Fprintf(os.Stderr, "discoverxfd: %v\n", cerr)
	}
	var rootErr *discoverxfd.RootMismatchError
	if errors.As(err, &rootErr) || errors.Is(err, discoverxfd.ErrEmptyTree) ||
		errors.Is(err, discoverxfd.ErrBadLimits) || errors.Is(err, discoverxfd.ErrUnknownFormat) {
		os.Exit(2)
	}
	os.Exit(1)
}
