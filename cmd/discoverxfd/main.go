// Command discoverxfd discovers XML functional dependencies, keys,
// and data redundancies in an XML document.
//
// Usage:
//
//	discoverxfd [flags] file.xml
//
// With no -schema flag the schema is inferred from the data (elements
// repeated under one parent become set elements). The report lists
// redundancy-indicating FDs per tuple class with witness counts, then
// keys, in the paper's path notation.
package main

import (
	"flag"
	"fmt"
	"os"

	"discoverxfd"
)

func main() {
	schemaPath := flag.String("schema", "", "schema file in nested-relational notation (default: infer from data)")
	intraOnly := flag.Bool("intra", false, "intra-relation FDs only (skip partition targets)")
	noSets := flag.Bool("nosets", false, "disable set-element FDs (earlier tuple-based notion)")
	ordered := flag.Bool("ordered", false, "compare set elements as ordered lists (Section 4.5 ablation)")
	maxLHS := flag.Int("maxlhs", 0, "bound on LHS attributes per hierarchy level (0 = unbounded)")
	constants := flag.Bool("constants", false, "also report constant-element FDs (empty LHS)")
	printSchema := flag.Bool("printschema", false, "print the (inferred or parsed) schema and exit")
	approx := flag.Float64("approx", 0, "also report approximate FDs within this g3 error budget (e.g. 0.02)")
	suggest := flag.Bool("suggest", false, "print schema-refinement suggestions after the report")
	jsonOut := flag.Bool("json", false, "emit the result as JSON instead of the text report")
	parallel := flag.Bool("parallel", false, "discover independent subtrees concurrently")
	stream := flag.Bool("stream", false, "stream the document instead of materializing it (requires -schema; disables -suggest)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: discoverxfd [flags] file.xml\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if *stream {
		runStream(flag.Arg(0), *schemaPath, *jsonOut, buildOptions(*maxLHS, *intraOnly, *noSets, *ordered, *constants, *approx, *parallel))
		return
	}

	doc, err := discoverxfd.LoadDocumentFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	var s *discoverxfd.Schema
	if *schemaPath != "" {
		text, err := os.ReadFile(*schemaPath)
		if err != nil {
			fatal(err)
		}
		s, err = discoverxfd.ParseSchema(string(text))
		if err != nil {
			fatal(err)
		}
	} else {
		s, err = discoverxfd.InferSchema(doc)
		if err != nil {
			fatal(err)
		}
	}
	if *printSchema {
		fmt.Print(s.String())
		return
	}

	opts := buildOptions(*maxLHS, *intraOnly, *noSets, *ordered, *constants, *approx, *parallel)
	h, err := discoverxfd.BuildHierarchy(doc, s, opts)
	if err != nil {
		fatal(err)
	}
	res, err := discoverxfd.DiscoverHierarchy(h, opts)
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		if err := discoverxfd.WriteJSON(os.Stdout, res); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("document: %s (%d nodes)\n\n", flag.Arg(0), doc.Size())
	if err := discoverxfd.WriteReport(os.Stdout, res); err != nil {
		fatal(err)
	}
	if len(res.ApproxFDs) > 0 {
		fmt.Printf("\nApproximate XML FDs (g3 ≤ %.3f): %d\n", *approx, len(res.ApproxFDs))
		for _, fd := range res.ApproxFDs {
			fmt.Printf("  %s\n", fd)
		}
	}
	if *suggest {
		fmt.Printf("\nSchema-refinement suggestions:\n")
		sugs := discoverxfd.SuggestRefinements(h, res)
		if len(sugs) == 0 {
			fmt.Println("  none — the document is redundancy-free")
		}
		for _, sg := range sugs {
			fmt.Printf("  %s\n", sg)
		}
	}
}

func buildOptions(maxLHS int, intraOnly, noSets, ordered, constants bool, approx float64, parallel bool) *discoverxfd.Options {
	return &discoverxfd.Options{
		MaxLHS:          maxLHS,
		IntraOnly:       intraOnly,
		NoSetElements:   noSets,
		OrderedSets:     ordered,
		KeepConstantFDs: constants,
		ApproxError:     approx,
		Parallel:        parallel,
	}
}

// runStream discovers over a streamed document: constant memory in
// the document size, at the cost of node-level reporting.
func runStream(path, schemaPath string, jsonOut bool, opts *discoverxfd.Options) {
	if schemaPath == "" {
		fatal(fmt.Errorf("-stream requires -schema (inference needs the whole document)"))
	}
	text, err := os.ReadFile(schemaPath)
	if err != nil {
		fatal(err)
	}
	s, err := discoverxfd.ParseSchema(string(text))
	if err != nil {
		fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	res, err := discoverxfd.DiscoverStream(f, s, opts)
	if err != nil {
		fatal(err)
	}
	if jsonOut {
		if err := discoverxfd.WriteJSON(os.Stdout, res); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("document: %s (streamed)\n\n", path)
	if err := discoverxfd.WriteReport(os.Stdout, res); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "discoverxfd: %v\n", err)
	os.Exit(1)
}
