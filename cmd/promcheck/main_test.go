package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func buildPromcheck(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "promcheck")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building promcheck: %v\n%s", err, out)
	}
	return bin
}

func runPromcheck(t *testing.T, bin string, stdin string, args ...string) (int, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	if stdin != "" {
		cmd.Stdin = strings.NewReader(stdin)
	}
	out, err := cmd.CombinedOutput()
	if err == nil {
		return 0, string(out)
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode(), string(out)
	}
	t.Fatalf("running promcheck: %v\n%s", err, out)
	return -1, ""
}

const validExposition = `# HELP xfd_http_requests_total HTTP requests served.
# TYPE xfd_http_requests_total counter
xfd_http_requests_total{route="/v1/discover",tenant="",code="2xx"} 4
# HELP xfd_queue_depth Admission queue depth.
# TYPE xfd_queue_depth gauge
xfd_queue_depth 0
`

// TestExitCodes pins the documented contract: 0 for a valid
// exposition (file or stdin), 1 for an invalid one, 2 for usage
// errors — including input that opens but cannot be read, like a
// directory.
func TestExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the command")
	}
	bin := buildPromcheck(t)
	dir := t.TempDir()

	valid := filepath.Join(dir, "ok.prom")
	if err := os.WriteFile(valid, []byte(validExposition), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, out := runPromcheck(t, bin, "", valid); code != 0 || !strings.Contains(out, "2 familie(s)") {
		t.Fatalf("valid file exit = %d\n%s", code, out)
	}
	if code, out := runPromcheck(t, bin, validExposition, "-"); code != 0 || !strings.Contains(out, "2 sample(s)") {
		t.Fatalf("valid stdin exit = %d\n%s", code, out)
	}

	// TYPE after samples is a structural violation.
	invalid := filepath.Join(dir, "bad.prom")
	bad := strings.Replace(validExposition,
		"# TYPE xfd_http_requests_total counter\nxfd_http_requests_total",
		"xfd_http_requests_total", 1)
	if err := os.WriteFile(invalid, []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, out := runPromcheck(t, bin, "", invalid); code != 1 {
		t.Fatalf("invalid file exit = %d, want 1\n%s", code, out)
	}

	if code, _ := runPromcheck(t, bin, ""); code != 2 {
		t.Fatalf("no-arg exit = %d, want 2", code)
	}
	if code, _ := runPromcheck(t, bin, "", filepath.Join(dir, "missing.prom")); code != 2 {
		t.Fatalf("missing-file exit = %d, want 2", code)
	}
	if code, _ := runPromcheck(t, bin, "", dir); code != 2 {
		t.Fatalf("directory exit = %d, want 2", code)
	}
}
