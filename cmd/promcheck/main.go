// Command promcheck validates a Prometheus text exposition (format
// 0.0.4) — the output of xfdd's GET /metrics — with the promlint-style
// checker in internal/telemetry: comment structure (HELP before TYPE
// before samples), known TYPE values, metric and label name grammar,
// parsable sample values, histogram shape (_bucket/_sum/_count, le
// bounds ascending and cumulative, +Inf matching _count), counter
// naming, and no duplicate samples.
//
// Usage:
//
//	promcheck metrics.txt
//	curl -s localhost:8080/metrics | promcheck -
//
// On success it prints a one-line summary (family and sample counts)
// and exits 0. An invalid exposition prints the first violation with
// its line number and exits 1; a missing argument or unreadable file
// exits 2. CI's server-smoke job runs it over a live xfdd scrape, so
// a formatting regression in the exposition writer cannot ship.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"discoverxfd/internal/telemetry"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: promcheck metrics.txt  (or - for stdin)\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	name := flag.Arg(0)
	var r io.Reader = os.Stdin
	if name != "-" {
		f, err := os.Open(name)
		if err != nil {
			fmt.Fprintf(os.Stderr, "promcheck: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		// A directory opens successfully but is not readable input; that
		// is a usage error (exit 2), not an invalid exposition (exit 1).
		if fi, err := f.Stat(); err != nil || fi.IsDir() {
			if err == nil {
				err = fmt.Errorf("%s is a directory", name)
			}
			fmt.Fprintf(os.Stderr, "promcheck: %v\n", err)
			os.Exit(2)
		}
		r = f
	}
	sum, err := telemetry.Lint(r)
	if err != nil {
		fmt.Fprintf(os.Stderr, "promcheck: %s: %v\n", name, err)
		os.Exit(1)
	}
	fmt.Printf("%s: valid exposition: %d familie(s), %d sample(s)\n",
		name, sum.Families, sum.Samples)
}
