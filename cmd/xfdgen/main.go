// Command xfdgen emits the synthetic datasets of the experiment
// harness as XML, for use with the discoverxfd CLI or any other
// tool.
//
// Usage:
//
//	xfdgen -dataset warehouse -scale 2 -seed 7 > warehouse.xml
//
// Datasets: warehouse, dblp, psd, auction, mondial, catalog, wide.
package main

import (
	"flag"
	"fmt"
	"os"

	"discoverxfd/internal/xmlgen"
)

func main() {
	name := flag.String("dataset", "warehouse", "dataset: warehouse|dblp|psd|auction|mondial|catalog|wide")
	scale := flag.Int("scale", 1, "size multiplier")
	seed := flag.Int64("seed", 0, "override the dataset's default seed (0 = default)")
	sets := flag.Int("sets", 4, "psd only: number of unrelated set elements (1..4)")
	width := flag.Int("width", 8, "wide only: attributes per row")
	truth := flag.Bool("truth", false, "print the injected ground-truth constraints to stderr")
	flag.Parse()

	var ds xmlgen.Dataset
	switch *name {
	case "warehouse":
		p := xmlgen.DefaultWarehouse()
		p.States *= *scale
		if *seed != 0 {
			p.Seed = *seed
		}
		ds = xmlgen.Warehouse(p)
	case "dblp":
		p := xmlgen.DefaultDBLP()
		p.Venues *= *scale
		if *seed != 0 {
			p.Seed = *seed
		}
		ds = xmlgen.DBLP(p)
	case "psd":
		p := xmlgen.DefaultPSD()
		p.Entries *= *scale
		p.UnrelatedSets = *sets
		if *seed != 0 {
			p.Seed = *seed
		}
		ds = xmlgen.PSD(p)
	case "auction":
		p := xmlgen.DefaultAuction()
		p.Factor = *scale
		if *seed != 0 {
			p.Seed = *seed
		}
		ds = xmlgen.Auction(p)
	case "mondial":
		p := xmlgen.DefaultMondial()
		p.Countries *= *scale
		if *seed != 0 {
			p.Seed = *seed
		}
		ds = xmlgen.Mondial(p)
	case "catalog":
		p := xmlgen.DefaultCatalog()
		p.Products *= *scale
		if *seed != 0 {
			p.Seed = *seed
		}
		ds = xmlgen.Catalog(p)
	case "wide":
		p := xmlgen.DefaultWide(*width)
		p.Rows *= *scale
		if *seed != 0 {
			p.Seed = *seed
		}
		ds = xmlgen.Wide(p)
	default:
		fmt.Fprintf(os.Stderr, "xfdgen: unknown dataset %q\n", *name)
		os.Exit(2)
	}

	if *truth {
		fmt.Fprintf(os.Stderr, "# %s\n", ds.Name)
		for _, c := range ds.GroundTruth {
			fmt.Fprintf(os.Stderr, "# %s\n", c)
		}
	}
	if err := ds.Tree.WriteXML(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "xfdgen: %v\n", err)
		os.Exit(1)
	}
}
