// Command tracecheck validates a JSONL trace file produced by
// `discoverxfd -trace` (or any trace.JSONL backend) against the event
// schema documented in docs/INTERNALS.md §12: every line must decode
// strictly, span nesting must be well-formed (run ⊃ stages ⊃
// relations), every successfully-ended run must contain all five
// pipeline stages, and enumerated fields (target actions, governor
// actions, check outcomes) must use their documented values. Traces
// written by xfdd additionally carry request correlation, which is
// checked too: trace_id/request_id must be well-formed lowercase hex
// (32 and 16 digits) and constant within a run, and every
// request_start span must be closed by a request_end with a valid
// HTTP status.
//
// Usage:
//
//	tracecheck run.trace
//
// On success it prints a one-line summary (event and run counts) and
// exits 0. A malformed trace prints the first violation with its line
// number and exits 1; a missing argument or unreadable file exits 2.
// CI's trace-smoke job runs it over a governed discovery's trace.
package main

import (
	"flag"
	"fmt"
	"os"

	"discoverxfd/internal/trace"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tracecheck file.trace\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracecheck: %v\n", err)
		os.Exit(2)
	}
	defer f.Close()
	// A directory opens successfully but is not readable input; that is
	// a usage error (exit 2), not a malformed trace (exit 1).
	if fi, err := f.Stat(); err != nil || fi.IsDir() {
		if err == nil {
			err = fmt.Errorf("%s is a directory", flag.Arg(0))
		}
		fmt.Fprintf(os.Stderr, "tracecheck: %v\n", err)
		os.Exit(2)
	}
	sum, err := trace.ValidateJSONL(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", flag.Arg(0), err)
		os.Exit(1)
	}
	fmt.Printf("%s: valid trace: %d event(s), %d run(s), %d request(s)\n",
		flag.Arg(0), sum.Events, sum.Runs, sum.Requests)
}
