package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTracecheck compiles the command into a temp dir.
func buildTracecheck(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "tracecheck")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building tracecheck: %v\n%s", err, out)
	}
	return bin
}

// exitCode runs the binary and returns its exit status and combined
// output.
func exitCode(t *testing.T, bin string, args ...string) (int, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return 0, string(out)
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode(), string(out)
	}
	t.Fatalf("running tracecheck: %v\n%s", err, out)
	return -1, ""
}

// TestExitCodes pins the documented contract: 0 for a valid trace, 1
// for a malformed one, 2 for usage errors — including input that
// opens but cannot be read, like a directory.
func TestExitCodes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the command")
	}
	bin := buildTracecheck(t)
	dir := t.TempDir()

	valid := filepath.Join(dir, "ok.trace")
	events := []string{
		`{"event":"run_start","t":"2026-08-08T00:00:00Z","run":"r1"}`,
		`{"event":"stage_start","t":"2026-08-08T00:00:01Z","run":"r1","stage":"plan"}`,
		`{"event":"stage_end","t":"2026-08-08T00:00:02Z","run":"r1","stage":"plan"}`,
		`{"event":"run_end","t":"2026-08-08T00:00:03Z","run":"r1","error":"boom"}`,
	}
	if err := os.WriteFile(valid, []byte(strings.Join(events, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, out := exitCode(t, bin, valid); code != 0 {
		t.Fatalf("valid trace exit = %d\n%s", code, out)
	}

	// A trace with request correlation: a request span bracketing a
	// failed run, all stamped with one trace_id/request_id pair.
	ids := `"trace_id":"0af7651916cd43dd8448eb211c80319c","request_id":"b7ad6b7169203331"`
	correlated := filepath.Join(dir, "req.trace")
	reqEvents := []string{
		`{"event":"request_start","t":"2026-08-08T00:00:00Z",` + ids + `,"action":"POST","detail":"/v1/discover"}`,
		`{"event":"run_start","t":"2026-08-08T00:00:01Z","run":"r1",` + ids + `}`,
		`{"event":"run_end","t":"2026-08-08T00:00:02Z","run":"r1",` + ids + `,"error":"boom"}`,
		`{"event":"request_end","t":"2026-08-08T00:00:03Z",` + ids + `,"action":"POST","detail":"/v1/discover","status":500}`,
	}
	if err := os.WriteFile(correlated, []byte(strings.Join(reqEvents, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, out := exitCode(t, bin, correlated); code != 0 || !strings.Contains(out, "1 request(s)") {
		t.Fatalf("correlated trace exit = %d\n%s", code, out)
	}

	// The same trace with a malformed request_id must be rejected.
	badID := filepath.Join(dir, "badid.trace")
	if err := os.WriteFile(badID, []byte(strings.ReplaceAll(
		strings.Join(reqEvents, "\n")+"\n", "b7ad6b7169203331", "nothex")), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, out := exitCode(t, bin, badID); code != 1 || !strings.Contains(out, "malformed request_id") {
		t.Fatalf("malformed request_id exit = %d\n%s", code, out)
	}

	malformed := filepath.Join(dir, "bad.trace")
	if err := os.WriteFile(malformed, []byte("{\"event\":\"stage_end\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, out := exitCode(t, bin, malformed); code != 1 {
		t.Fatalf("malformed trace exit = %d, want 1\n%s", code, out)
	}

	if code, out := exitCode(t, bin); code != 2 {
		t.Fatalf("missing argument exit = %d, want 2\n%s", code, out)
	}

	if code, out := exitCode(t, bin, filepath.Join(dir, "nosuch.trace")); code != 2 {
		t.Fatalf("missing file exit = %d, want 2\n%s", code, out)
	}

	// A directory opens successfully; it must still be a usage error.
	if code, out := exitCode(t, bin, dir); code != 2 {
		t.Fatalf("directory input exit = %d, want 2\n%s", code, out)
	}
}
