// Command xfdcheck verifies a list of XML FD / Key constraints
// against an XML document — constraint regression testing: pin the
// dependencies your data must satisfy and fail the build when an
// update breaks one.
//
// Usage:
//
//	xfdcheck -constraints rules.txt data.xml
//
// The constraints file holds one constraint per line in the paper's
// notation ('#' comments allowed):
//
//	{./ISBN} -> ./title w.r.t. C(/warehouse/state/store/book)
//	{../contact/name, ./ISBN} -> ./price w.r.t. C(/warehouse/state/store/book)
//	{./contact} KEY of C(/warehouse/state/store)
//
// Observability flags mirror discoverxfd's: -trace=<file> writes the
// check's trace events as JSONL (each constraint yields a `check`
// event), -v/-vv log progress to stderr, and -metrics prints the
// engine's counter snapshot as JSON on stderr after the checks.
//
// Exit status is 0 when every constraint holds, 1 when a constraint
// is violated or a runtime error occurs, and 2 on a usage error (bad
// flags, -stream without -schema, a negative limit flag, or input whose shape contradicts
// the schema — classified via errors.Is/errors.As on the library's
// sentinel errors).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"discoverxfd"
	"discoverxfd/internal/cliutil"
)

// tracing is the run's tracer stack; fatal flushes it before exiting
// so a failed check still leaves a valid (truncated) trace file.
var tracing *cliutil.Tracing

func main() {
	rulesPath := flag.String("constraints", "", "constraints file (required)")
	schemaPath := flag.String("schema", "", "schema file in nested-relational notation (default: infer)")
	quiet := flag.Bool("quiet", false, "print only violated constraints")
	approx := flag.Float64("approx", 0, "tolerate FD violations up to this g3 error fraction (e.g. 0.01)")
	stream := flag.Bool("stream", false, "stream the document instead of materializing it (requires -schema)")
	tracePath := flag.String("trace", "", "write the check's trace events to this file as JSONL")
	verbose := flag.Bool("v", false, "log progress to stderr")
	veryVerbose := flag.Bool("vv", false, "like -v plus throttled per-level and per-target detail")
	metrics := flag.Bool("metrics", false, "print the engine's metrics snapshot as JSON on stderr after the checks")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: xfdcheck -constraints rules.txt [flags] data.xml\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 || *rulesPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	tr, err := cliutil.Open(*tracePath, *verbose, *veryVerbose)
	if err != nil {
		fatal(err)
	}
	tracing = tr

	rulesText, err := os.ReadFile(*rulesPath)
	if err != nil {
		fatal(err)
	}
	cs, err := discoverxfd.ParseConstraints(string(rulesText))
	if err != nil {
		fatal(err)
	}
	var s *discoverxfd.Schema
	if *schemaPath != "" {
		text, err := os.ReadFile(*schemaPath)
		if err != nil {
			fatal(err)
		}
		s, err = discoverxfd.ParseSchema(string(text))
		if err != nil {
			fatal(err)
		}
	}
	eng := discoverxfd.NewEngine(&discoverxfd.Options{Trace: tracing.Tracer()})
	var h *discoverxfd.Hierarchy
	if *stream {
		if s == nil {
			fmt.Fprintln(os.Stderr, "xfdcheck: -stream requires -schema")
			flag.Usage()
			os.Exit(2)
		}
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		h, err = eng.BuildHierarchyStream(context.Background(), f, s)
		if err != nil {
			fatal(err)
		}
	} else {
		doc, err := eng.LoadDocumentFile(context.Background(), flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		h, err = eng.BuildHierarchy(context.Background(), doc, s)
		if err != nil {
			fatal(err)
		}
	}
	results, err := eng.CheckConstraints(context.Background(), h, cs)
	if err != nil {
		fatal(err)
	}
	violated := 0
	for _, r := range results {
		tolerated := !r.Holds && !r.Constraint.IsKey && *approx > 0 && r.G3Error <= *approx
		if !r.Holds && !tolerated {
			violated++
		}
		if tolerated {
			fmt.Printf("%-8s %s (g3=%.4f within budget)\n", "NEAR", r.Constraint, r.G3Error)
			continue
		}
		if !*quiet || !r.Holds {
			fmt.Println(r)
		}
	}
	finish(eng, *metrics)
	if violated > 0 {
		fmt.Fprintf(os.Stderr, "xfdcheck: %d of %d constraint(s) violated\n", violated, len(results))
		os.Exit(1)
	}
	if !*quiet {
		fmt.Printf("all %d constraint(s) hold\n", len(results))
	}
}

// finish flushes the trace file and, under -metrics, prints the
// engine's counter snapshot on stderr; it runs before the
// violation-driven exit so a failing check still leaves both.
func finish(eng *discoverxfd.Engine, metrics bool) {
	if err := tracing.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "xfdcheck: %v\n", err)
		os.Exit(1)
	}
	if metrics {
		if err := cliutil.WriteMetrics(os.Stderr, eng.Metrics()); err != nil {
			fmt.Fprintf(os.Stderr, "xfdcheck: %v\n", err)
			os.Exit(1)
		}
	}
}

// fatal prints the error and exits, classifying it through any %w
// wrapping on the call path: malformed input (wrong root, empty
// document) exits 2 like other usage errors, everything else exits 1.
// The trace file is flushed first so a failed check still leaves a
// valid (truncated) trace.
func fatal(err error) {
	fmt.Fprintf(os.Stderr, "xfdcheck: %v\n", err)
	if cerr := tracing.Close(); cerr != nil {
		fmt.Fprintf(os.Stderr, "xfdcheck: %v\n", cerr)
	}
	var rootErr *discoverxfd.RootMismatchError
	if errors.As(err, &rootErr) || errors.Is(err, discoverxfd.ErrEmptyTree) ||
		errors.Is(err, discoverxfd.ErrBadLimits) || errors.Is(err, discoverxfd.ErrUnknownFormat) {
		os.Exit(2)
	}
	os.Exit(1)
}
