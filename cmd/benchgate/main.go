// Command benchgate is the CI bench-regression gate: it compares a
// fresh `xfdbench -json` report against the committed baseline
// (BENCH_partition.json) and exits nonzero when a gated speedup
// metric fell more than -threshold below its baseline value. Only
// within-run ratios are gated — absolute timings are machine-
// dependent and ignored — so the gate holds across CI hardware.
//
// Beyond the relative gate, -floor imposes absolute minimums: each
// occurrence of the flag names one metric=min pair that the current
// report must meet regardless of the baseline. The E-update gate
// uses it to require the incremental discovery path to stay at
// least 5x faster than a cold rebuild at the 1% mutation point.
//
// Usage:
//
//	benchgate -baseline BENCH_partition.json -current bench.json \
//	    [-threshold 0.25] [-floor metric=min ...]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"discoverxfd/internal/bench"
)

// floorFlags collects repeated -floor metric=min pairs.
type floorFlags map[string]float64

func (f floorFlags) String() string {
	var parts []string
	for k, v := range f {
		parts = append(parts, fmt.Sprintf("%s=%g", k, v))
	}
	return strings.Join(parts, ",")
}

func (f floorFlags) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok || name == "" {
		return fmt.Errorf("want metric=min, got %q", s)
	}
	min, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return fmt.Errorf("floor for %s: %w", name, err)
	}
	f[name] = min
	return nil
}

func main() {
	baseline := flag.String("baseline", "BENCH_partition.json", "committed baseline report")
	current := flag.String("current", "", "freshly generated report to gate (required)")
	threshold := flag.Float64("threshold", 0.25, "maximum allowed fractional drop of a gated metric")
	floors := floorFlags{}
	flag.Var(floors, "floor", "absolute minimum for a metric, as metric=min (repeatable)")
	flag.Parse()
	if *current == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -current is required")
		flag.Usage()
		os.Exit(2)
	}

	read := func(path string) *bench.Report {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		r, err := bench.ReadReport(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %s: %v\n", path, err)
			os.Exit(2)
		}
		return r
	}
	base := read(*baseline)
	cur := read(*current)

	regs, err := bench.Compare(base, cur, *threshold)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	if len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d regression(s) beyond the %.0f%% threshold:\n", len(regs), *threshold*100)
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "  %s\n", r)
		}
		fmt.Fprintf(os.Stderr, "benchgate: if the slowdown is intended, regenerate %s or apply the bench-regression-ok label (see .github/workflows/ci.yml)\n", *baseline)
		os.Exit(1)
	}
	if vios := bench.CheckFloors(cur, floors); len(vios) > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d absolute-floor violation(s):\n", len(vios))
		for _, v := range vios {
			fmt.Fprintf(os.Stderr, "  %s\n", v)
		}
		fmt.Fprintln(os.Stderr, "benchgate: floors are hard requirements and cannot be waived by regenerating the baseline")
		os.Exit(1)
	}
	fmt.Println("benchgate: ok — no gated metric regressed beyond the threshold, all floors met")
}
