// Command benchgate is the CI bench-regression gate: it compares a
// fresh `xfdbench -json` report against the committed baseline
// (BENCH_partition.json) and exits nonzero when a gated speedup
// metric fell more than -threshold below its baseline value. Only
// within-run ratios are gated — absolute timings are machine-
// dependent and ignored — so the gate holds across CI hardware.
//
// Usage:
//
//	benchgate -baseline BENCH_partition.json -current bench.json [-threshold 0.25]
package main

import (
	"flag"
	"fmt"
	"os"

	"discoverxfd/internal/bench"
)

func main() {
	baseline := flag.String("baseline", "BENCH_partition.json", "committed baseline report")
	current := flag.String("current", "", "freshly generated report to gate (required)")
	threshold := flag.Float64("threshold", 0.25, "maximum allowed fractional drop of a gated metric")
	flag.Parse()
	if *current == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -current is required")
		flag.Usage()
		os.Exit(2)
	}

	read := func(path string) *bench.Report {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
			os.Exit(2)
		}
		defer f.Close()
		r, err := bench.ReadReport(f)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchgate: %s: %v\n", path, err)
			os.Exit(2)
		}
		return r
	}
	base := read(*baseline)
	cur := read(*current)

	regs, err := bench.Compare(base, cur, *threshold)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: %v\n", err)
		os.Exit(2)
	}
	if len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "benchgate: %d regression(s) beyond the %.0f%% threshold:\n", len(regs), *threshold*100)
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "  %s\n", r)
		}
		fmt.Fprintln(os.Stderr, "benchgate: if the slowdown is intended, regenerate BENCH_partition.json or apply the bench-regression-ok label (see .github/workflows/ci.yml)")
		os.Exit(1)
	}
	fmt.Println("benchgate: ok — no gated metric regressed beyond the threshold")
}
