// Command xfdbench runs the experiment harness reconstructing the
// paper's evaluation (see DESIGN.md and EXPERIMENTS.md). With no
// arguments it runs every experiment; otherwise it runs the named
// ones (e1..e7).
//
// Usage:
//
//	xfdbench [-quick] [e1 e2 ...]
package main

import (
	"flag"
	"fmt"
	"os"

	"discoverxfd/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "run scaled-down configurations (CI speed)")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: xfdbench [-quick] [-list] [e1 e2 ...]\n\n")
		fmt.Fprintf(os.Stderr, "Runs the DiscoverXFD experiment suite (default: all).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	var todo []bench.Experiment
	if flag.NArg() == 0 {
		todo = bench.All()
	} else {
		for _, id := range flag.Args() {
			e := bench.ByID(id)
			if e == nil {
				fmt.Fprintf(os.Stderr, "xfdbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			todo = append(todo, *e)
		}
	}
	for _, e := range todo {
		e.Run(*quick).Fprint(os.Stdout)
	}
}
