// Command xfdbench runs the experiment harness reconstructing the
// paper's evaluation (see DESIGN.md and EXPERIMENTS.md). With no
// arguments it runs every experiment; otherwise it runs the named
// ones (e1..e16). -json emits the machine-readable report consumed by
// the CI bench gate (cmd/benchgate) instead of the text tables.
//
// Usage:
//
//	xfdbench [-quick] [-json] [e1 e2 ...]
package main

import (
	"flag"
	"fmt"
	"os"

	"discoverxfd/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "run scaled-down configurations (CI speed)")
	list := flag.Bool("list", false, "list experiments and exit")
	jsonOut := flag.Bool("json", false, "emit a machine-readable JSON report (tables, per-experiment timings, metrics)")
	format := flag.String("format", "all", "document formats the source-parity experiment (e16) ingests: all, xml, or json")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: xfdbench [-quick] [-json] [-list] [-format all|xml|json] [e1 e2 ...]\n\n")
		fmt.Fprintf(os.Stderr, "Runs the DiscoverXFD experiment suite (default: all).\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	switch *format {
	case "all":
	case "xml", "json":
		bench.SourceFormats = []string{*format}
	default:
		fmt.Fprintf(os.Stderr, "xfdbench: unknown -format %q (use all, xml, or json)\n", *format)
		os.Exit(2)
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	var todo []bench.Experiment
	if flag.NArg() == 0 {
		todo = bench.All()
	} else {
		for _, id := range flag.Args() {
			e := bench.ByID(id)
			if e == nil {
				fmt.Fprintf(os.Stderr, "xfdbench: unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			todo = append(todo, *e)
		}
	}
	if *jsonOut {
		if err := bench.Run(todo, *quick).WriteJSON(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "xfdbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	for _, e := range todo {
		e.Run(*quick).Fprint(os.Stdout)
	}
}
