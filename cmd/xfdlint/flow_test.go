package main

// flow_test.go covers the v2 surface: the seeded-bug regression for
// the flow-aware analyzers (each planted bug must produce exactly one
// diagnostic), SARIF output, the GitHub annotation mode, and the
// suppression audit.

import (
	"bytes"
	"encoding/json"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"discoverxfd/internal/analysis"
)

// copyModule clones the module tree (minus VCS metadata and the lint
// fixtures, which go list skips anyway) into a temp dir so tests can
// plant bugs without touching the working tree.
func copyModule(t *testing.T) string {
	t.Helper()
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	dst := t.TempDir()
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case ".git", ".claude", "testdata":
				if rel != "." {
					return filepath.SkipDir
				}
			}
			if rel == "." {
				return nil
			}
			return os.MkdirAll(filepath.Join(dst, rel), 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(dst, rel), data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	return dst
}

// mutate rewrites one file under root, replacing old (which must be
// present exactly once) with new.
func mutate(t *testing.T, root, relPath, old, new string) {
	t.Helper()
	path := filepath.Join(root, relPath)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(string(data), old); n != 1 {
		t.Fatalf("%s: seeded-bug anchor occurs %d times, want 1:\n%s", relPath, n, old)
	}
	if err := os.WriteFile(path, []byte(strings.Replace(string(data), old, new, 1)), 0o644); err != nil {
		t.Fatal(err)
	}
}

// lint runs the built tool standalone in dir and returns its combined
// output and exit error.
func lint(t *testing.T, bin, dir string, args ...string) (string, error) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	cmd.Dir = dir
	var buf bytes.Buffer
	cmd.Stdout = &buf
	cmd.Stderr = &buf
	err := cmd.Run()
	return buf.String(), err
}

// countFindings counts diagnostic lines attributed to one analyzer.
func countFindings(out, analyzer string) int {
	n := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.HasSuffix(strings.TrimSpace(line), "["+analyzer+"]") {
			n++
		}
	}
	return n
}

// TestSeededFlowBugs is the acceptance check for the flow-aware
// analyzers: deleting one `defer e.mu.Unlock()` in the engine and the
// deferred stage_end emit in the run pipeline must each produce
// exactly one diagnostic from the right analyzer.
func TestSeededFlowBugs(t *testing.T) {
	if testing.Short() {
		t.Skip("copies and type-checks the whole module")
	}
	bin := buildTool(t)

	t.Run("lockguard", func(t *testing.T) {
		tree := copyModule(t)
		mutate(t, tree, filepath.Join("internal", "core", "engine.go"),
			"\te.mu.Lock()\n\tdefer e.mu.Unlock()\n\tfor _, w := range e.warm {", "\te.mu.Lock()\n\tfor _, w := range e.warm {")
		out, err := lint(t, bin, tree)
		if err == nil {
			t.Fatalf("seeded unlock leak not caught:\n%s", out)
		}
		if got := countFindings(out, "lockguard"); got != 1 {
			t.Fatalf("lockguard findings = %d, want exactly 1:\n%s", got, out)
		}
		if !strings.Contains(out, "e.mu is locked but not released on every path") {
			t.Fatalf("unexpected diagnostic:\n%s", out)
		}
	})

	t.Run("spanbalance", func(t *testing.T) {
		tree := copyModule(t)
		mutate(t, tree, filepath.Join("internal", "core", "run.go"),
			`		start := time.Now()
		defer func() {
			trace.Emit(run.tr, &trace.Event{Kind: trace.KindStageEnd, Stage: name, DurationMS: msSince(start)})
		}()
`, "")
		out, err := lint(t, bin, tree)
		if err == nil {
			t.Fatalf("seeded missing stage_end not caught:\n%s", out)
		}
		if got := countFindings(out, "spanbalance"); got != 1 {
			t.Fatalf("spanbalance findings = %d, want exactly 1:\n%s", got, out)
		}
		if !strings.Contains(out, "StageStart span opened here can reach return without a KindStageEnd emit") {
			t.Fatalf("unexpected diagnostic:\n%s", out)
		}
	})
}

// TestSARIFAndAnnotations lints the clean repository with -sarif and
// -github: the SARIF log must be valid and list the full rule set,
// and no annotations may be emitted.
func TestSARIFAndAnnotations(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	bin := buildTool(t)
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	sarifPath := filepath.Join(t.TempDir(), "xfdlint.sarif")
	out, err := lint(t, bin, root, "-sarif", sarifPath, "-github")
	if err != nil {
		t.Fatalf("clean tree lint failed: %v\n%s", err, out)
	}
	if strings.Contains(out, "::error") {
		t.Fatalf("clean tree produced annotations:\n%s", out)
	}
	data, err := os.ReadFile(sarifPath)
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Rules []any `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []any `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(data, &log); err != nil {
		t.Fatalf("invalid SARIF: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 ||
		len(log.Runs[0].Tool.Driver.Rules) != len(analysis.All()) ||
		len(log.Runs[0].Results) != 0 {
		t.Fatalf("unexpected SARIF shape: %s", data)
	}
}

// TestGitHubAnnotationsOnFindings plants a bug and expects a ::error
// workflow command with repo-relative path.
func TestGitHubAnnotationsOnFindings(t *testing.T) {
	if testing.Short() {
		t.Skip("copies and type-checks the whole module")
	}
	bin := buildTool(t)
	tree := copyModule(t)
	mutate(t, tree, filepath.Join("internal", "core", "engine.go"),
		"\te.mu.Lock()\n\tdefer e.mu.Unlock()\n\tfor _, w := range e.warm {", "\te.mu.Lock()\n\tfor _, w := range e.warm {")
	out, err := lint(t, bin, tree, "-github")
	if err == nil {
		t.Fatal("expected findings exit status")
	}
	if !strings.Contains(out, "::error file=internal/core/engine.go,line=") {
		t.Fatalf("missing or mis-pathed annotation:\n%s", out)
	}
}

// TestSuppressionsAudit runs the audit twice: the repository's own
// ledger must be fully used, and a planted stale directive must fail
// the audit with exit 1.
func TestSuppressionsAudit(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	bin := buildTool(t)
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	out, err := lint(t, bin, root, "-suppressions")
	if err != nil {
		t.Fatalf("audit of the clean tree failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "0 stale or unknown") {
		t.Fatalf("unexpected audit summary:\n%s", out)
	}

	tree := copyModule(t)
	mutate(t, tree, filepath.Join("internal", "core", "engine.go"),
		"type Engine struct {",
		"//lint:detorder planted stale directive for the audit test\ntype Engine struct {")
	out, err = lint(t, bin, tree, "-suppressions")
	if err == nil {
		t.Fatalf("stale directive not caught:\n%s", out)
	}
	if !strings.Contains(out, "STALE //lint:detorder") {
		t.Fatalf("missing stale report:\n%s", out)
	}

	// An unknown directive fails too.
	tree2 := copyModule(t)
	mutate(t, tree2, filepath.Join("internal", "core", "engine.go"),
		"type Engine struct {",
		"//lint:nosuchcheck mystery directive\ntype Engine struct {")
	out, err = lint(t, bin, tree2, "-suppressions")
	if err == nil || !strings.Contains(out, "UNKNOWN //lint:nosuchcheck") {
		t.Fatalf("unknown directive not caught (err=%v):\n%s", err, out)
	}
}

// TestFixDryRunAndApply plants an errwrap violation, verifies that
// -fix -dry-run reports it without changing the tree and exits 1,
// then applies it with -fix and expects a clean follow-up lint.
func TestFixDryRunAndApply(t *testing.T) {
	if testing.Short() {
		t.Skip("copies and type-checks the whole module")
	}
	bin := buildTool(t)
	tree := copyModule(t)
	target := filepath.Join("internal", "core", "parsefd.go")
	mutate(t, tree, target,
		`rhs := schema.RelPath(fields[0])
	if err := checkRelPath(rhs); err != nil {
		return FD{}, false, fmt.Errorf("core: %w in %q", err, orig)`,
		`rhs := schema.RelPath(fields[0])
	if err := checkRelPath(rhs); err != nil {
		return FD{}, false, fmt.Errorf("core: %v in %q", err, orig)`)
	before, err := os.ReadFile(filepath.Join(tree, target))
	if err != nil {
		t.Fatal(err)
	}

	out, err := lint(t, bin, tree, "-fix", "-dry-run")
	if err == nil {
		t.Fatalf("dry run found nothing:\n%s", out)
	}
	if !strings.Contains(out, "-fix would rewrite") || !strings.Contains(out, "parsefd.go") {
		t.Fatalf("unexpected dry-run output:\n%s", out)
	}
	after, err := os.ReadFile(filepath.Join(tree, target))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("dry run modified the tree")
	}

	if out, err := lint(t, bin, tree, "-fix"); err != nil {
		t.Fatalf("applying fixes failed: %v\n%s", err, out)
	}
	if out, err := lint(t, bin, tree); err != nil {
		t.Fatalf("tree still dirty after -fix: %v\n%s", err, out)
	}
}
