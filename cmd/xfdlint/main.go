// Command xfdlint runs the engine's invariant analyzers
// (govdiscipline, partimmut, ctxplumb, detorder — see
// internal/analysis) over the module. It works two ways:
//
// Standalone, from anywhere inside the module:
//
//	go run ./cmd/xfdlint [import-path-substring ...]
//
// As a vet tool, speaking the cmd/go vet protocol (-V=full, -flags,
// and per-package vet.cfg invocations), so the whole suite rides the
// go command's package loading, caching, and diagnostics plumbing:
//
//	go build -o "$(go env GOPATH)/bin/xfdlint" ./cmd/xfdlint
//	go vet -vettool="$(go env GOPATH)/bin/xfdlint" ./...
//
// or, without managing the binary by hand:
//
//	go vet -vettool=$(go run ./cmd/xfdlint -print-path) ./...
//
// where -print-path builds a cached copy of the tool and prints its
// location.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"

	"discoverxfd/internal/analysis"
)

func main() {
	versionFlag := flag.String("V", "", "print version (go vet protocol; use -V=full)")
	flagsFlag := flag.Bool("flags", false, "print the tool's flags as JSON (go vet protocol)")
	printPath := flag.Bool("print-path", false, "build a cached copy of xfdlint and print its path")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: xfdlint [import-path-substring ...]\n   or: go vet -vettool=$(go run ./cmd/xfdlint -print-path) ./...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	switch {
	case *versionFlag != "":
		printVersion()
	case *flagsFlag:
		// No analyzer-selection flags yet: the suite always runs whole.
		fmt.Println("[]")
	case *printPath:
		if err := buildAndPrintPath(); err != nil {
			fatal(err)
		}
	case flag.NArg() == 1 && strings.HasSuffix(flag.Arg(0), ".cfg"):
		code, err := runVetUnit(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		os.Exit(code)
	default:
		code, err := runStandalone(flag.Args())
		if err != nil {
			fatal(err)
		}
		os.Exit(code)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xfdlint:", err)
	os.Exit(1)
}

// printVersion implements `xfdlint -V=full`. cmd/go requires the
// output shape `<name> version <id>` and uses the whole line as the
// tool's cache ID, so the ID must change whenever the binary does:
// hash the executable.
func printVersion() {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				id = fmt.Sprintf("%x", h.Sum(nil))[:16]
			}
			f.Close()
		}
	}
	fmt.Printf("xfdlint version v1-%s\n", id)
}

// buildAndPrintPath builds the tool into the user cache and prints
// the binary's path, so `go vet -vettool=$(go run ./cmd/xfdlint
// -print-path)` works even though `go run` deletes its own temporary
// binary.
func buildAndPrintPath() error {
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		return err
	}
	cacheDir, err := os.UserCacheDir()
	if err != nil {
		cacheDir = os.TempDir()
	}
	out := filepath.Join(cacheDir, "xfdlint", "xfdlint")
	if runtime.GOOS == "windows" {
		out += ".exe"
	}
	if err := os.MkdirAll(filepath.Dir(out), 0o755); err != nil {
		return err
	}
	cmd := exec.Command("go", "build", "-o", out, "./cmd/xfdlint")
	cmd.Dir = root
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("building xfdlint: %w", err)
	}
	fmt.Println(out)
	return nil
}

// runStandalone loads the whole module and reports findings,
// optionally filtered to packages whose import path contains any of
// the given substrings. Exit code 1 means findings.
func runStandalone(filters []string) (int, error) {
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		return 0, err
	}
	pkgs, err := analysis.LoadModulePackages(root)
	if err != nil {
		return 0, err
	}
	found := 0
	for _, pkg := range pkgs {
		if !matchesFilter(pkg.ImportPath, filters) {
			continue
		}
		for _, f := range pkg.Analyze(analysis.All()) {
			fmt.Fprintln(os.Stderr, f)
			found++
		}
	}
	if found > 0 {
		fmt.Fprintf(os.Stderr, "xfdlint: %d finding(s)\n", found)
		return 1, nil
	}
	return 0, nil
}

func matchesFilter(path string, filters []string) bool {
	if len(filters) == 0 {
		return true
	}
	for _, f := range filters {
		if strings.Contains(path, f) {
			return true
		}
	}
	return false
}

// vetConfig mirrors the JSON the go command writes for each package
// it asks a vet tool to check (cmd/go/internal/work's vetConfig).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// runVetUnit checks one package as directed by a vet.cfg file. The
// returned code is the process exit status: nonzero tells go vet the
// package failed.
func runVetUnit(cfgPath string) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 0, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("parsing %s: %w", cfgPath, err)
	}
	// The go command asks for dependencies first so tools can
	// propagate facts through .vetx files. This suite's invariants are
	// package-local, so dependency units — and any package outside the
	// module — only need an (empty) vetx written.
	inModule := cfg.ImportPath == analysis.ModulePrefix ||
		strings.HasPrefix(cfg.ImportPath, analysis.ModulePrefix+"/")
	if cfg.VetxOnly || !inModule {
		return 0, writeVetx(cfg)
	}

	fset := token.NewFileSet()
	files, err := analysis.ParseFiles(fset, "", cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, writeVetx(cfg)
		}
		return 0, err
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	conf := types.Config{Importer: imp}
	if cfg.GoVersion != "" {
		conf.GoVersion = cfg.GoVersion
	}
	info := analysis.NewInfo()
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, writeVetx(cfg)
		}
		return 0, fmt.Errorf("type-checking %s: %w", cfg.ImportPath, err)
	}

	findings := analysis.Run(analysis.All(), fset, files, tpkg, info)
	if err := writeVetx(cfg); err != nil {
		return 0, err
	}
	if len(findings) > 0 {
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, f)
		}
		return 2, nil
	}
	return 0, nil
}

// writeVetx writes the (empty) facts file the go command caches for
// this package.
func writeVetx(cfg vetConfig) error {
	if cfg.VetxOutput == "" {
		return nil
	}
	return os.WriteFile(cfg.VetxOutput, nil, 0o666)
}
