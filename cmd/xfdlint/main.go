// Command xfdlint runs the engine's invariant analyzers — the
// syntactic quartet (govdiscipline, partimmut, ctxplumb, detorder)
// plus the flow-aware quartet (lockguard, spanbalance, errwrap,
// govleak) — see internal/analysis. It works two ways:
//
// Standalone, from anywhere inside the module:
//
//	go run ./cmd/xfdlint [flags] [import-path-substring ...]
//
// Standalone flags:
//
//	-sarif file      also write findings as SARIF 2.1.0 ("-" = stdout)
//	-github          also print GitHub Actions ::error annotations
//	-fix             apply the analyzers' mechanical fixes in place
//	-dry-run         with -fix: report files a fix would change, change
//	                 nothing, and exit 1 if there are any
//	-suppressions    audit //lint: directives instead of linting: list
//	                 every directive and fail on stale or unknown ones
//
// As a vet tool, speaking the cmd/go vet protocol (-V=full, -flags,
// and per-package vet.cfg invocations), so the whole suite rides the
// go command's package loading, caching, and diagnostics plumbing:
//
//	go build -o "$(go env GOPATH)/bin/xfdlint" ./cmd/xfdlint
//	go vet -vettool="$(go env GOPATH)/bin/xfdlint" ./...
//
// or, without managing the binary by hand:
//
//	go vet -vettool=$(go run ./cmd/xfdlint -print-path) ./...
//
// where -print-path builds a cached copy of the tool and prints its
// location.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"

	"discoverxfd/internal/analysis"
)

func main() {
	versionFlag := flag.String("V", "", "print version (go vet protocol; use -V=full)")
	flagsFlag := flag.Bool("flags", false, "print the tool's flags as JSON (go vet protocol)")
	printPath := flag.Bool("print-path", false, "build a cached copy of xfdlint and print its path")
	var opts standaloneOpts
	flag.StringVar(&opts.sarifPath, "sarif", "", "write findings as SARIF 2.1.0 to this file (\"-\" for stdout)")
	flag.BoolVar(&opts.github, "github", false, "print GitHub Actions ::error annotations for findings")
	flag.BoolVar(&opts.fix, "fix", false, "apply the analyzers' mechanical fixes in place")
	flag.BoolVar(&opts.dryRun, "dry-run", false, "with -fix: only report the files a fix would change; exit 1 if any")
	suppressions := flag.Bool("suppressions", false, "audit //lint: directives: list all, fail on stale or unknown ones")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: xfdlint [flags] [import-path-substring ...]\n   or: go vet -vettool=$(go run ./cmd/xfdlint -print-path) ./...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	switch {
	case *versionFlag != "":
		printVersion()
	case *flagsFlag:
		// The standalone flags are not offered to cmd/go: vet drives the
		// tool one package at a time and fixes/SARIF need the whole-module
		// view, so vet invocations always run the plain suite.
		fmt.Println("[]")
	case *printPath:
		if err := buildAndPrintPath(); err != nil {
			fatal(err)
		}
	case *suppressions:
		code, err := runSuppressionAudit(flag.Args())
		if err != nil {
			fatal(err)
		}
		os.Exit(code)
	case flag.NArg() == 1 && strings.HasSuffix(flag.Arg(0), ".cfg"):
		code, err := runVetUnit(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		os.Exit(code)
	default:
		code, err := runStandalone(flag.Args(), opts)
		if err != nil {
			fatal(err)
		}
		os.Exit(code)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xfdlint:", err)
	os.Exit(1)
}

// printVersion implements `xfdlint -V=full`. cmd/go requires the
// output shape `<name> version <id>` and uses the whole line as the
// tool's cache ID, so the ID must change whenever the binary does:
// hash the executable.
func printVersion() {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				id = fmt.Sprintf("%x", h.Sum(nil))[:16]
			}
			f.Close()
		}
	}
	fmt.Printf("xfdlint version v1-%s\n", id)
}

// buildAndPrintPath builds the tool into the user cache and prints
// the binary's path, so `go vet -vettool=$(go run ./cmd/xfdlint
// -print-path)` works even though `go run` deletes its own temporary
// binary.
func buildAndPrintPath() error {
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		return err
	}
	cacheDir, err := os.UserCacheDir()
	if err != nil {
		cacheDir = os.TempDir()
	}
	out := filepath.Join(cacheDir, "xfdlint", "xfdlint")
	if runtime.GOOS == "windows" {
		out += ".exe"
	}
	if err := os.MkdirAll(filepath.Dir(out), 0o755); err != nil {
		return err
	}
	cmd := exec.Command("go", "build", "-o", out, "./cmd/xfdlint")
	cmd.Dir = root
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("building xfdlint: %w", err)
	}
	fmt.Println(out)
	return nil
}

// standaloneOpts are the reporting and rewriting knobs of a
// standalone run.
type standaloneOpts struct {
	sarifPath string
	github    bool
	fix       bool
	dryRun    bool
}

// runStandalone loads the whole module and reports findings,
// optionally filtered to packages whose import path contains any of
// the given substrings. Exit code 1 means surviving findings (or,
// under -fix -dry-run, files a fix would change).
func runStandalone(filters []string, opts standaloneOpts) (int, error) {
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		return 0, err
	}
	pkgs, err := analysis.LoadModulePackages(root)
	if err != nil {
		return 0, err
	}
	var findings []analysis.Finding
	for _, pkg := range pkgs {
		if !matchesFilter(pkg.ImportPath, filters) {
			continue
		}
		findings = append(findings, pkg.Analyze(analysis.All())...)
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}

	if opts.sarifPath != "" {
		if err := writeSARIFFile(opts.sarifPath, findings, root); err != nil {
			return 0, err
		}
	}
	if opts.github {
		for _, f := range findings {
			printGitHubAnnotation(f, root)
		}
	}

	if opts.fix {
		return applyFindingFixes(findings, opts.dryRun)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "xfdlint: %d finding(s)\n", len(findings))
		return 1, nil
	}
	return 0, nil
}

// applyFindingFixes plans the mechanical fixes attached to the
// findings and applies them (or, in dry-run, only reports what would
// change). The exit code is 1 when findings survive un-fixed, or when
// a dry run detects pending changes.
func applyFindingFixes(findings []analysis.Finding, dryRun bool) (int, error) {
	plans, err := analysis.PlanFixes(findings)
	if err != nil {
		return 0, err
	}
	fixable := 0
	for _, p := range plans {
		fixable += p.Count
	}
	unfixed := len(findings) - fixable
	if dryRun {
		for _, p := range plans {
			fmt.Fprintf(os.Stderr, "xfdlint: -fix would rewrite %s (%d fix(es))\n", p.Filename, p.Count)
		}
		if len(plans) > 0 {
			return 1, nil
		}
		if unfixed > 0 {
			fmt.Fprintf(os.Stderr, "xfdlint: %d finding(s), none mechanically fixable\n", unfixed)
			return 1, nil
		}
		return 0, nil
	}
	changed, err := analysis.ApplyFixes(plans)
	if err != nil {
		return 0, err
	}
	if changed > 0 {
		fmt.Fprintf(os.Stderr, "xfdlint: applied %d fix(es) across %d file(s)\n", fixable, changed)
	}
	if unfixed > 0 {
		fmt.Fprintf(os.Stderr, "xfdlint: %d finding(s) had no mechanical fix\n", unfixed)
		return 1, nil
	}
	return 0, nil
}

// writeSARIFFile renders the run as SARIF ("-" = stdout).
func writeSARIFFile(path string, findings []analysis.Finding, root string) error {
	if path == "-" {
		return analysis.WriteSARIF(os.Stdout, analysis.All(), findings, root)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := analysis.WriteSARIF(f, analysis.All(), findings, root); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// printGitHubAnnotation emits one GitHub Actions workflow command per
// finding, so findings surface as PR annotations without SARIF upload
// permissions.
func printGitHubAnnotation(f analysis.Finding, root string) {
	file := f.Pos.Filename
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = filepath.ToSlash(rel)
	}
	// Workflow-command syntax: properties are comma-separated, the
	// message follows the double colon.
	msg := strings.NewReplacer("%", "%25", "\r", "%0D", "\n", "%0A").Replace(
		fmt.Sprintf("%s [%s]", f.Message, f.Analyzer))
	fmt.Printf("::error file=%s,line=%d,col=%d::%s\n", file, f.Pos.Line, f.Pos.Column, msg)
}

// runSuppressionAudit lists every //lint: directive in the module and
// fails (exit 1) when any is stale — its analyzer ran and silenced
// nothing — or names a directive no analyzer owns.
func runSuppressionAudit(filters []string) (int, error) {
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		return 0, err
	}
	pkgs, err := analysis.LoadModulePackages(root)
	if err != nil {
		return 0, err
	}
	total, bad := 0, 0
	for _, pkg := range pkgs {
		if !matchesFilter(pkg.ImportPath, filters) {
			continue
		}
		_, records := pkg.Audit(analysis.All())
		for _, r := range records {
			total++
			file := r.File
			if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
				file = filepath.ToSlash(rel)
			}
			switch {
			case !analysis.KnownDirective(analysis.All(), r.Directive):
				bad++
				fmt.Fprintf(os.Stderr, "%s:%d: UNKNOWN //lint:%s (no analyzer owns this directive)\n", file, r.Line, r.Directive)
			case !r.Used:
				bad++
				fmt.Fprintf(os.Stderr, "%s:%d: STALE //lint:%s — silences nothing; delete it (reason was: %s)\n", file, r.Line, r.Directive, r.Reason)
			default:
				fmt.Printf("%s:%d: ok //lint:%s (%s)\n", file, r.Line, r.Directive, r.Reason)
			}
		}
	}
	fmt.Printf("xfdlint: %d suppression(s), %d stale or unknown\n", total, bad)
	if bad > 0 {
		return 1, nil
	}
	return 0, nil
}

func matchesFilter(path string, filters []string) bool {
	if len(filters) == 0 {
		return true
	}
	for _, f := range filters {
		if strings.Contains(path, f) {
			return true
		}
	}
	return false
}

// vetConfig mirrors the JSON the go command writes for each package
// it asks a vet tool to check (cmd/go/internal/work's vetConfig).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	GoVersion                 string
	SucceedOnTypecheckFailure bool
}

// runVetUnit checks one package as directed by a vet.cfg file. The
// returned code is the process exit status: nonzero tells go vet the
// package failed.
func runVetUnit(cfgPath string) (int, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return 0, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return 0, fmt.Errorf("parsing %s: %w", cfgPath, err)
	}
	// The go command asks for dependencies first so tools can
	// propagate facts through .vetx files. This suite's invariants are
	// package-local, so dependency units — and any package outside the
	// module — only need an (empty) vetx written.
	inModule := cfg.ImportPath == analysis.ModulePrefix ||
		strings.HasPrefix(cfg.ImportPath, analysis.ModulePrefix+"/")
	if cfg.VetxOnly || !inModule {
		return 0, writeVetx(cfg)
	}

	fset := token.NewFileSet()
	files, err := analysis.ParseFiles(fset, "", cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, writeVetx(cfg)
		}
		return 0, err
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		if canon, ok := cfg.ImportMap[path]; ok {
			path = canon
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	conf := types.Config{Importer: imp}
	if cfg.GoVersion != "" {
		conf.GoVersion = cfg.GoVersion
	}
	info := analysis.NewInfo()
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0, writeVetx(cfg)
		}
		return 0, fmt.Errorf("type-checking %s: %w", cfg.ImportPath, err)
	}

	findings := analysis.Run(analysis.All(), fset, files, tpkg, info)
	if err := writeVetx(cfg); err != nil {
		return 0, err
	}
	if len(findings) > 0 {
		for _, f := range findings {
			fmt.Fprintln(os.Stderr, f)
		}
		return 2, nil
	}
	return 0, nil
}

// writeVetx writes the (empty) facts file the go command caches for
// this package.
func writeVetx(cfg vetConfig) error {
	if cfg.VetxOutput == "" {
		return nil
	}
	return os.WriteFile(cfg.VetxOutput, nil, 0o666)
}
