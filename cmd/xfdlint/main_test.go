package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"discoverxfd/internal/analysis"
)

// buildTool compiles xfdlint once per test binary into a temp dir.
func buildTool(t *testing.T) string {
	t.Helper()
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "xfdlint")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/xfdlint")
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building xfdlint: %v\n%s", err, out)
	}
	return bin
}

// TestVetProtocol checks the cmd/go handshake: -V=full must print
// `xfdlint version <id>` and -flags must print a JSON flag list.
func TestVetProtocol(t *testing.T) {
	bin := buildTool(t)

	out, err := exec.Command(bin, "-V=full").Output()
	if err != nil {
		t.Fatal(err)
	}
	fields := strings.Fields(string(out))
	if len(fields) != 3 || fields[0] != "xfdlint" || fields[1] != "version" || fields[2] == "devel" {
		t.Fatalf("-V=full output %q does not satisfy the vet tool handshake", out)
	}

	out, err = exec.Command(bin, "-flags").Output()
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(out)) != "[]" {
		t.Fatalf("-flags output %q, want []", out)
	}
}

// TestGoVetCleanAndCatches runs the real `go vet -vettool` pipeline
// twice: the repository itself must come back clean, and a seeded
// violation must fail the vet run with a govdiscipline diagnostic.
func TestGoVetCleanAndCatches(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go vet over the module")
	}
	bin := buildTool(t)
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}

	vet := func(pkg string) (string, error) {
		cmd := exec.Command("go", "vet", "-vettool="+bin, pkg)
		cmd.Dir = root
		var buf bytes.Buffer
		cmd.Stdout = &buf
		cmd.Stderr = &buf
		err := cmd.Run()
		return buf.String(), err
	}

	if out, err := vet("./..."); err != nil {
		t.Fatalf("go vet -vettool on a clean tree failed: %v\n%s", err, out)
	}

	seed := filepath.Join(root, "internal", "core", "zz_seeded_violation.go")
	src := "package core\n\nfunc seededViolation() {\n\tgo seededViolation()\n}\n"
	if err := os.WriteFile(seed, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	defer os.Remove(seed)
	out, err := vet("./internal/core/")
	if err == nil {
		t.Fatalf("go vet -vettool missed the seeded violation:\n%s", out)
	}
	if !strings.Contains(out, "bare go statement") || !strings.Contains(out, "govdiscipline") {
		t.Fatalf("seeded violation produced unexpected output:\n%s", out)
	}
}

// TestStandaloneMode runs the binary without arguments from inside
// the module and expects a clean exit.
func TestStandaloneMode(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	bin := buildTool(t)
	root, err := analysis.ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin)
	cmd.Dir = root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("standalone xfdlint failed: %v\n%s", err, out)
	}
}
