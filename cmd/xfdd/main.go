// Command xfdd serves XML FD discovery over HTTP: the discoverxfd
// Engine behind a long-lived, fault-tolerant service.
//
// Usage:
//
//	xfdd [flags]
//
// Endpoints (see docs/INTERNALS.md §13 and the README quickstart):
//
//	POST /v1/discover          synchronous discovery; body is raw XML
//	                           (schema inferred) or a JSON envelope
//	                           {"document": "...", "schema": "..."}
//	POST /v1/jobs              asynchronous discovery; returns a job id
//	GET  /v1/jobs/{id}         job status
//	GET  /v1/jobs/{id}/events  run progress (SSE or ?cursor polling)
//	GET  /v1/jobs/{id}/result  the rendered result once done
//	DELETE /v1/jobs/{id}       cancel the job's run
//	GET  /healthz, /readyz     liveness / readiness
//	GET  /v1/stats, /debug/vars  operational counters
//	GET  /metrics              Prometheus text exposition (RED metrics,
//	                           admission gauges, engine counters; see
//	                           docs/INTERNALS.md §17)
//
// Every response carries a W3C traceparent (joining the caller's
// trace when the request carried one) and an X-Request-Id; run events
// in the -trace JSONL are stamped with the same ids. -slow-run
// enables a per-stage timing report for requests over the threshold;
// cmd/xfdtop is a live terminal view over /metrics and /v1/stats.
//
// Request parameters: ?timeout= bounds the run's wall clock (clamped
// to -max-timeout), ?degrade=truncate serves partial results on
// budget exhaustion instead of 504, ?max_tuples= / ?max_nodes= /
// ?max_depth= / ?max_lattice_level= tighten (never exceed) the
// server's limits, and the X-Tenant header selects the admission
// quota bucket.
//
// Overload is shed with 429 + Retry-After once the admission queue
// fills; SIGTERM/SIGINT drains — readiness flips to 503, in-flight
// runs complete (bounded by -drain-timeout), traces and metrics are
// flushed — then the process exits. Exit status is 0 after a clean
// drain, 1 on a serve or drain error, 2 on a usage error.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"discoverxfd"
	"discoverxfd/internal/cliutil"
	"discoverxfd/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	maxConcurrent := flag.Int("max-concurrent", 0, "concurrent discovery runs (0 = GOMAXPROCS)")
	queueDepth := flag.Int("queue-depth", 0, "admitted requests that may wait beyond the running set (0 = 2x max-concurrent, negative = none)")
	tenantQuota := flag.Int("tenant-quota", 0, "per-tenant cap on running+queued requests (0 = uncapped)")
	maxBody := flag.Int64("max-body", 32<<20, "request body size cap in bytes")
	format := flag.String("format", "xml", "document format assumed for bodies that do not declare one: xml or json")
	defaultTimeout := flag.Duration("default-timeout", 30*time.Second, "per-request wall-clock budget when the request names none (0 = none)")
	maxTimeout := flag.Duration("max-timeout", 5*time.Minute, "cap on the per-request ?timeout= budget (0 = uncapped)")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint on 429/503 responses")
	maxJobs := flag.Int("max-jobs", 64, "job records retained before the oldest finished jobs are evicted")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "how long SIGTERM waits for in-flight runs before aborting them")
	parallel := flag.Bool("parallel", false, "discover independent subtrees concurrently within each run")
	maxLHS := flag.Int("maxlhs", 0, "bound on LHS attributes per hierarchy level (0 = unbounded)")
	maxNodes := flag.Int("maxnodes", 0, "reject documents with more than this many data nodes (0 = unlimited)")
	maxDepth := flag.Int("maxdepth", 0, "reject documents nested deeper than this many elements (0 = parser default)")
	maxTuples := flag.Int("maxtuples", 0, "ingest at most this many tuples per run, truncating the result (0 = unlimited)")
	maxLevel := flag.Int("maxlevel", 0, "cap the lattice level explored per relation (0 = unbounded)")
	tracePath := flag.String("trace", "", "write every run's trace events to this file as JSONL")
	slowRun := flag.Duration("slow-run", 0, "log a slow-request report with per-stage timings for requests outliving this threshold (0 = off)")
	verbose := flag.Bool("v", false, "log run/stage/relation progress to stderr")
	veryVerbose := flag.Bool("vv", false, "like -v plus throttled per-level and per-target detail")
	metrics := flag.Bool("metrics", false, "print the server's stats snapshot as JSON on stderr after drain")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: xfdd [flags]\n\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 0 {
		flag.Usage()
		os.Exit(2)
	}
	if *format != "xml" && *format != "json" {
		fmt.Fprintf(os.Stderr, "xfdd: unknown -format %q (use xml or json)\n", *format)
		os.Exit(2)
	}

	limits := discoverxfd.Limits{
		MaxDepth:        *maxDepth,
		MaxNodes:        *maxNodes,
		MaxTuples:       *maxTuples,
		MaxLatticeLevel: *maxLevel,
	}
	if err := limits.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "xfdd: %v\n", err)
		os.Exit(2)
	}

	tracing, err := cliutil.Open(*tracePath, *verbose, *veryVerbose)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xfdd: %v\n", err)
		os.Exit(1)
	}

	log := slog.New(slog.NewTextHandler(os.Stderr, nil))
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()

	// The signal context only *triggers* the drain; it must not be the
	// server's lifecycle context (which cancelling aborts every
	// in-flight run — the opposite of a graceful drain). Drain itself
	// aborts stragglers through the lifecycle context when the grace
	// period expires.
	srv := server.New(context.Background(), server.Config{
		MaxConcurrent:  *maxConcurrent,
		QueueDepth:     *queueDepth,
		TenantQuota:    *tenantQuota,
		MaxBodyBytes:   *maxBody,
		DefaultFormat:  *format,
		DefaultTimeout: *defaultTimeout,
		MaxTimeout:     *maxTimeout,
		RetryAfter:     *retryAfter,
		MaxJobs:        *maxJobs,
		Limits:         limits,
		Options:        discoverxfd.Options{Parallel: *parallel, MaxLHS: *maxLHS},
		Trace:          tracing.Tracer(),
		Log:            log,
		SlowRun:        *slowRun,
	})
	srv.PublishExpvar("xfdd")

	// No BaseContext override: a request's context must die with its
	// connection (client-disconnect backpressure), not with the first
	// SIGTERM — in-flight runs get the drain's grace period.
	httpSrv := &http.Server{
		Addr:    *addr,
		Handler: srv.Handler(),
	}

	// Serve until the first signal, then drain: stop accepting (the
	// listener closes via Shutdown), complete in-flight runs bounded
	// by -drain-timeout, flush the trace, and exit.
	errc := make(chan error, 1)
	//lint:governed the serve goroutine is joined via errc on both exit paths; Shutdown unblocks it.
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Info("xfdd listening", "addr", *addr)

	exit := 0
	select {
	case err := <-errc:
		// Listener died before any signal: fatal.
		fmt.Fprintf(os.Stderr, "xfdd: %v\n", err)
		exit = 1
	case <-ctx.Done():
		log.Info("signal received, draining", "grace", *drainTimeout)
		stop() // restore default signal behavior: a second signal kills
		dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		if err := srv.Drain(dctx); err != nil {
			fmt.Fprintf(os.Stderr, "xfdd: %v\n", err)
			exit = 1
		}
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := httpSrv.Shutdown(sctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "xfdd: shutdown: %v\n", err)
			exit = 1
		}
		scancel()
		cancel()
		<-errc // ListenAndServe has returned ErrServerClosed
	}

	if err := tracing.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "xfdd: %v\n", err)
		exit = 1
	}
	if *metrics {
		if err := cliutil.WriteMetrics(os.Stderr, srv.Stats()); err != nil {
			fmt.Fprintf(os.Stderr, "xfdd: %v\n", err)
		}
	}
	os.Exit(exit)
}
