package discoverxfd_test

import (
	"fmt"
	"log"

	"discoverxfd"
)

// The examples below double as godoc documentation and as tests:
// their Output comments are verified by `go test`.

func ExampleDiscover() {
	doc, err := discoverxfd.ParseDocument(`
<library>
  <shelf>
    <book><isbn>1</isbn><title>Go</title></book>
    <book><isbn>2</isbn><title>XML</title></book>
  </shelf>
  <shelf>
    <book><isbn>1</isbn><title>Go</title></book>
  </shelf>
</library>`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := discoverxfd.Discover(doc, nil, nil) // schema inferred
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range res.Redundancies {
		fmt.Println(r)
	}
	// Output:
	// {./title} -> ./isbn w.r.t. C(/library/shelf/book)  [1 redundant value(s) in 1 group(s)]
	// {./isbn} -> ./title w.r.t. C(/library/shelf/book)  [1 redundant value(s) in 1 group(s)]
}

func ExampleEvaluate() {
	doc, _ := discoverxfd.ParseDocument(`
<lib>
  <b><isbn>1</isbn><a>X</a><a>Y</a></b>
  <b><isbn>1</isbn><a>Y</a><a>X</a></b>
  <b><isbn>2</isbn><a>Z</a></b>
</lib>`)
	h, err := discoverxfd.BuildHierarchy(doc, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	// ./a names the author SET: the reordered collections agree.
	ev, err := discoverxfd.Evaluate(h, "/lib/b",
		[]discoverxfd.RelPath{"./isbn"}, "./a")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("holds=%v key=%v witnesses=%d\n", ev.Holds, ev.LHSIsKey, ev.Witnesses)
	// Output:
	// holds=true key=false witnesses=1
}

func ExampleParseConstraint() {
	c, err := discoverxfd.ParseConstraint(
		"{../contact/name, ./ISBN} -> ./price w.r.t. C(/warehouse/state/store/book)")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(c.FD.Class)
	fmt.Println(c.FD.LHS)
	fmt.Println(c.IsKey)
	// Output:
	// /warehouse/state/store/book
	// [../contact/name ./ISBN]
	// false
}

func ExampleCheckConstraints() {
	doc, _ := discoverxfd.ParseDocument(`
<shop>
  <item><sku>1</sku><name>Pen</name></item>
  <item><sku>1</sku><name>Gel Pen</name></item>
</shop>`)
	h, err := discoverxfd.BuildHierarchy(doc, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	cs, _ := discoverxfd.ParseConstraints(`{./sku} -> ./name w.r.t. C(/shop/item)`)
	results, err := discoverxfd.CheckConstraints(h, cs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(results[0].Holds, results[0].Violations)
	// Output:
	// false 1
}

func ExampleSuggestRefinements() {
	doc, _ := discoverxfd.ParseDocument(`
<shop>
  <item><sku>1</sku><name>Pen</name></item>
  <item><sku>1</sku><name>Pen</name></item>
  <item><sku>2</sku><name>Pad</name></item>
</shop>`)
	h, err := discoverxfd.BuildHierarchy(doc, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	res, err := discoverxfd.DiscoverHierarchy(h, nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range discoverxfd.SuggestRefinements(h, res) {
		fmt.Println(s)
	}
	// Output:
	// move ./name of C(/shop/item) into new element <item_name_by_sku> keyed by {./sku}: saves 1 value(s)
	// move ./sku of C(/shop/item) into new element <item_sku_by_name> keyed by {./name}: saves 1 value(s)
}
