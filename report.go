package discoverxfd

import (
	"fmt"
	"io"
	"strings"
	"time"

	"discoverxfd/internal/schema"
)

// WriteReport renders a human-readable summary of a discovery result:
// redundancy-indicating FDs grouped by tuple class (most redundant
// first within each class), then keys per class, then run statistics.
func WriteReport(w io.Writer, res *Result) error {
	ew := &errw{w: w}

	fmt.Fprintf(ew, "Redundancy-indicating XML FDs: %d\n", len(res.FDs))
	byClass := map[schema.Path][]Redundancy{}
	var classes []schema.Path
	for _, r := range res.Redundancies {
		if _, ok := byClass[r.FD.Class]; !ok {
			classes = append(classes, r.FD.Class)
		}
		byClass[r.FD.Class] = append(byClass[r.FD.Class], r)
	}
	for _, c := range classes {
		fmt.Fprintf(ew, "\n  tuple class C(%s):\n", c)
		rs := byClass[c]
		for i := 0; i < len(rs); i++ {
			for j := i + 1; j < len(rs); j++ {
				if rs[j].RedundantValues > rs[i].RedundantValues {
					rs[i], rs[j] = rs[j], rs[i]
				}
			}
		}
		for _, r := range rs {
			fmt.Fprintf(ew, "    {%s} -> %s   (%d redundant value(s) in %d group(s))\n",
				joinRelPaths(r.FD.LHS), r.FD.RHS, r.RedundantValues, r.Groups)
		}
	}

	fmt.Fprintf(ew, "\nXML Keys: %d\n", len(res.Keys))
	var last schema.Path
	for _, k := range res.Keys {
		if k.Class != last {
			fmt.Fprintf(ew, "\n  tuple class C(%s):\n", k.Class)
			last = k.Class
		}
		fmt.Fprintf(ew, "    {%s}\n", joinRelPaths(k.LHS))
	}

	st := res.Stats
	fmt.Fprintf(ew, "\nRun: %d relation(s), %d tuple(s), %d lattice node(s), %d partition product(s)\n",
		st.Relations, st.Tuples, st.NodesVisited, st.PartitionsComputed)
	fmt.Fprintf(ew, "     partition cache: %d hit(s), %d miss(es), %d eviction(s), peak ~%s",
		st.PartitionCacheHits, st.PartitionCacheMisses, st.PartitionCacheEvictions,
		fmtBytes(st.PartitionCachePeakBytes))
	if st.ParallelProducts > 0 {
		fmt.Fprintf(ew, "; %d parallel product(s)", st.ParallelProducts)
	}
	fmt.Fprintln(ew)
	fmt.Fprintf(ew, "     targets created %d, propagated %d, dropped %d; intra %v, inter %v\n",
		st.TargetsCreated, st.TargetsPropagated, st.TargetsDropped,
		st.IntraTime.Round(timeUnit(st.IntraTime)), st.InterTime.Round(timeUnit(st.InterTime)))
	if st.Truncated {
		fmt.Fprintf(ew, "\nPARTIAL RESULT: %s — constraints may be missing (see Limits).\n", st.TruncatedReason)
	}
	return ew.err
}

// ReportString renders WriteReport into a string.
func ReportString(res *Result) string {
	var b strings.Builder
	WriteReport(&b, res)
	return b.String()
}

func joinRelPaths(rs []RelPath) string {
	parts := make([]string, len(rs))
	for i, r := range rs {
		parts[i] = string(r)
	}
	return strings.Join(parts, ", ")
}

type errw struct {
	w   io.Writer
	err error
}

func (e *errw) Write(p []byte) (int, error) {
	if e.err != nil {
		return 0, e.err
	}
	n, err := e.w.Write(p)
	e.err = err
	return n, err
}

// fmtBytes renders a byte count with a binary-unit suffix.
func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// timeUnit picks a rounding granularity proportional to the
// duration's magnitude so reports stay readable.
func timeUnit(d time.Duration) time.Duration {
	switch {
	case d > time.Second:
		return 10 * time.Millisecond
	case d > time.Millisecond:
		return 10 * time.Microsecond
	default:
		return 100 * time.Nanosecond
	}
}
