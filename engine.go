package discoverxfd

import (
	"context"
	"fmt"
	"io"
	"os"
	"time"

	"discoverxfd/internal/core"
	"discoverxfd/internal/datatree"
	"discoverxfd/internal/source"
	"discoverxfd/internal/source/jsondoc"
	"discoverxfd/internal/telemetry"
	"discoverxfd/internal/trace"
)

// Engine is the reusable discovery engine behind every entrypoint in
// this package: construct it once from an Options value and call its
// methods from as many goroutines as you like. Each call runs an
// isolated staged pipeline (plan → traverse → minimize → verify →
// assemble; see internal/core), so concurrent calls never observe
// each other's state. What an Engine does share across calls is a
// warm layer of immutable partitions per hierarchy: repeated
// discovery over the same *Hierarchy value reuses partitions computed
// by earlier runs instead of rebuilding them (benchmark E14 measures
// the effect), which is why long-lived services should hold one
// Engine rather than calling the package-level wrappers in a loop.
//
// Every package-level Discover*/Build*/Evaluate*/Check* function is a
// thin wrapper that constructs a one-shot Engine, so the two styles
// always compute identical results; only reuse differs.
//
// Wall-clock budgets are per call: Options.Limits.Deadline is
// relative, and each method converts it to an absolute deadline when
// the call starts.
type Engine struct {
	opts Options
	core *core.Engine
}

// NewEngine returns an Engine running every call with the given
// options; nil means defaults. The options are copied — later
// mutation of *opts does not affect the engine.
func NewEngine(opts *Options) *Engine {
	o := Options{}
	if opts != nil {
		o = *opts
	}
	return &Engine{opts: o, core: core.NewEngine(o.coreOptions(time.Time{}))}
}

// Options returns a copy of the engine's configuration.
func (e *Engine) Options() Options { return e.opts }

// Metrics returns a snapshot of the engine's cumulative counters:
// runs started/finished/truncated/failed, warm-layer seedings, direct
// evaluations, the partition-cache high-water mark, and the summed
// Stats of every finished run. Safe to call concurrently with running
// discoveries.
func (e *Engine) Metrics() Metrics { return e.core.Metrics() }

// PublishExpvar publishes the engine's live Metrics under the given
// name in the process's expvar registry (rendered at /debug/vars when
// the expvar HTTP handler is installed). Each scrape takes a fresh
// snapshot. Publication is idempotent per name: re-publishing —
// another engine in the same process, or the same engine twice —
// replaces the earlier publisher instead of panicking, so restarts
// and tests that build many engines stay safe.
func (e *Engine) PublishExpvar(name string) {
	telemetry.PublishExpvar(name, func() any { return e.Metrics() })
}

// Discover runs DiscoverXFD on the document: it finds all minimal
// interesting XML FDs and Keys and derives the redundancies the FDs
// indicate (see the package-level DiscoverContext for the
// cancellation and truncation contract). If s is nil the schema is
// inferred from the data. The Limits.Deadline budget covers hierarchy
// construction and discovery together.
func (e *Engine) Discover(ctx context.Context, doc *Document, s *Schema) (*Result, error) {
	if err := e.opts.Limits.Validate(); err != nil {
		return nil, err
	}
	deadline := e.opts.Limits.deadlineFor(ctx, time.Now())
	h, err := buildHierarchyAt(ctx, doc, s, &e.opts, deadline)
	if err != nil {
		return nil, err
	}
	return e.discoverAt(ctx, h, deadline)
}

// DiscoverHierarchy runs DiscoverXFD on a prebuilt hierarchy.
// Repeated calls with the same *Hierarchy reuse the engine's warm
// partitions — this is the engine-reuse fast path.
func (e *Engine) DiscoverHierarchy(ctx context.Context, h *Hierarchy) (*Result, error) {
	if err := e.opts.Limits.Validate(); err != nil {
		return nil, err
	}
	return e.discoverAt(ctx, h, e.opts.Limits.deadlineFor(ctx, time.Now()))
}

// DiscoverStream runs DiscoverXFD over an XML stream without
// materializing the document (see the package-level
// BuildHierarchyStream for the streaming contract; the schema is
// required).
func (e *Engine) DiscoverStream(ctx context.Context, r io.Reader, s *Schema) (*Result, error) {
	if err := e.opts.Limits.Validate(); err != nil {
		return nil, err
	}
	deadline := e.opts.Limits.deadlineFor(ctx, time.Now())
	h, err := buildHierarchyStreamAt(ctx, r, s, &e.opts, deadline)
	if err != nil {
		return nil, err
	}
	return e.discoverAt(ctx, h, deadline)
}

// discoverAt routes one governed run into the core engine with the
// call's absolute deadline.
func (e *Engine) discoverAt(ctx context.Context, h *Hierarchy, deadline time.Time) (*Result, error) {
	if e.opts.IntraOnly {
		return e.core.DiscoverIntraAt(ctx, h, deadline)
	}
	return e.core.DiscoverAt(ctx, h, deadline)
}

// LoadDocument parses an XML document from r under the engine's parse
// limits (Limits.MaxDepth, Limits.MaxNodes), checking ctx
// periodically.
func (e *Engine) LoadDocument(ctx context.Context, r io.Reader) (*Document, error) {
	if err := e.opts.Limits.Validate(); err != nil {
		return nil, err
	}
	return datatree.ParseXMLContext(ctx, r, e.opts.Limits.parseLimits())
}

// LoadJSON parses a JSON document from r into the same data-tree
// model as LoadDocument, under the engine's parse limits. Arrays
// become set elements (repeated children, declared repeatable even
// with one member), nested objects become singleton records, scalars
// become leaf values with their literal spelling preserved, and
// explicit null stays distinguishable from a missing member (a
// present, valueless node). See internal/source/jsondoc for the full
// mapping.
func (e *Engine) LoadJSON(ctx context.Context, r io.Reader) (*Document, error) {
	if err := e.opts.Limits.Validate(); err != nil {
		return nil, err
	}
	return jsondoc.ParseContext(ctx, r, e.opts.Limits.parseLimits())
}

// LoadDocumentFile parses a document from a file under the engine's
// parse limits, detecting the format from the file extension (.xml,
// .json) or, when the extension is not registered, from the first
// bytes of the content. Unrecognized input fails with
// ErrUnknownFormat.
func (e *Engine) LoadDocumentFile(ctx context.Context, path string) (*Document, error) {
	return e.LoadDocumentFileAs(ctx, path, "auto")
}

// LoadDocumentFileAs is LoadDocumentFile with the format forced:
// "xml" or "json" bypasses detection (unregistered formats fail with
// ErrUnknownFormat), while "auto" or "" detects as LoadDocumentFile
// does.
func (e *Engine) LoadDocumentFileAs(ctx context.Context, path, format string) (*Document, error) {
	if err := e.opts.Limits.Validate(); err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	var src source.Source
	var r io.Reader = f
	if format == "" || format == "auto" {
		src, r, err = source.Detect(path, f)
	} else {
		src, err = source.ByFormat(format)
	}
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	doc, err := src.Load(ctx, r, e.opts.Limits.parseLimits())
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

// BuildHierarchy constructs the hierarchical representation of the
// document under the engine's options (see the package-level
// BuildHierarchyContext for the truncation contract).
func (e *Engine) BuildHierarchy(ctx context.Context, doc *Document, s *Schema) (*Hierarchy, error) {
	if err := e.opts.Limits.Validate(); err != nil {
		return nil, err
	}
	return buildHierarchyAt(ctx, doc, s, &e.opts, e.opts.Limits.deadlineFor(ctx, time.Now()))
}

// BuildHierarchyStream constructs the hierarchical representation
// directly from an XML stream (see the package-level
// BuildHierarchyStreamContext; the schema is required).
func (e *Engine) BuildHierarchyStream(ctx context.Context, r io.Reader, s *Schema) (*Hierarchy, error) {
	if err := e.opts.Limits.Validate(); err != nil {
		return nil, err
	}
	return buildHierarchyStreamAt(ctx, r, s, &e.opts, e.opts.Limits.deadlineFor(ctx, time.Now()))
}

// Evaluate checks a single XML FD ⟨class, lhs, rhs⟩ directly against
// a hierarchy, independent of discovery.
func (e *Engine) Evaluate(ctx context.Context, h *Hierarchy, class Path, lhs []RelPath, rhs RelPath) (Evaluation, error) {
	return e.core.Evaluate(ctx, h, class, lhs, rhs)
}

// CheckConstraints evaluates each parsed constraint against the
// hierarchy, independent of discovery — the regression-testing
// workflow: pin the constraints your data must satisfy and fail CI
// when an update breaks one.
func (e *Engine) CheckConstraints(ctx context.Context, h *Hierarchy, cs []Constraint) ([]CheckResult, error) {
	out := make([]CheckResult, 0, len(cs))
	for _, c := range cs {
		rhs := c.FD.RHS
		if c.IsKey {
			rel := h.ByPivot(c.FD.Class)
			if rel == nil {
				return nil, fmt.Errorf("discoverxfd: unknown tuple class %s in %s", c.FD.Class, c)
			}
			if rel.NAttrs() == 0 {
				return nil, fmt.Errorf("discoverxfd: class %s has no attributes to key", c.FD.Class)
			}
			rhs = rel.Attrs[0].Rel
		}
		ev, err := e.Evaluate(ctx, h, c.FD.Class, c.FD.LHS, rhs)
		if err != nil {
			return nil, fmt.Errorf("discoverxfd: checking %s: %w", c, err)
		}
		r := CheckResult{Constraint: c}
		if c.IsKey {
			r.Holds = ev.LHSIsKey
			r.Violations = ev.Witnesses + ev.Violations
		} else {
			r.Holds = ev.Holds
			r.Violations = ev.Violations
			r.Witnesses = ev.Witnesses
			if !ev.Holds {
				r.G3Error = ev.Error
			}
		}
		if e.opts.Trace != nil {
			action := "violated"
			if r.Holds {
				action = "holds"
			}
			trace.Emit(e.opts.Trace, &trace.Event{Kind: trace.KindCheck,
				Relation: string(c.FD.Class), Action: action, Detail: c.String(), Pairs: r.Violations})
		}
		out = append(out, r)
	}
	return out, nil
}
