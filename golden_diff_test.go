package discoverxfd_test

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"discoverxfd"
	"discoverxfd/internal/xmlgen"
)

// -update regenerates the golden Result JSON fixtures under
// testdata/golden from the current engine. The committed fixtures were
// produced by the pre-Engine monolithic discover() path; the
// differential test below pins the staged Run/Engine pipeline to
// byte-identical output.
var updateGolden = flag.Bool("update", false, "rewrite testdata/golden fixtures")

// goldenCases pairs every generated example corpus document with the
// option sets whose Result JSON is pinned. Stats wall-clock fields are
// zeroed before encoding (the only non-deterministic Result fields);
// everything else — FDs, keys, redundancy witnesses, lattice and
// cache counters — must reproduce exactly.
func goldenCases() []struct {
	slug string
	ds   xmlgen.Dataset
	opts *discoverxfd.Options
} {
	return []struct {
		slug string
		ds   xmlgen.Dataset
		opts *discoverxfd.Options
	}{
		{"warehouse", xmlgen.Warehouse(xmlgen.DefaultWarehouse()), nil},
		{"warehouse_approx", xmlgen.Warehouse(xmlgen.DefaultWarehouse()), &discoverxfd.Options{ApproxError: 0.05}},
		{"warehouse_parallel", xmlgen.Warehouse(xmlgen.DefaultWarehouse()), &discoverxfd.Options{Parallel: true}},
		{"warehouse_intra", xmlgen.Warehouse(xmlgen.DefaultWarehouse()), &discoverxfd.Options{IntraOnly: true}},
		{"dblp", xmlgen.DBLP(xmlgen.DefaultDBLP()), nil},
		{"auction", xmlgen.Auction(xmlgen.DefaultAuction()), nil},
		{"mondial", xmlgen.Mondial(xmlgen.DefaultMondial()), nil},
		{"mondial_nosets", xmlgen.Mondial(xmlgen.DefaultMondial()), &discoverxfd.Options{NoSetElements: true}},
		{"catalog", xmlgen.Catalog(xmlgen.DefaultCatalog()), nil},
		{"psd", xmlgen.PSD(xmlgen.DefaultPSD()), nil},
	}
}

// TestResultJSONGolden is the refactor's differential harness: the
// public Discover path over the example corpus must emit byte-identical
// Result JSON to the committed pre-refactor fixtures.
func TestResultJSONGolden(t *testing.T) {
	for _, c := range goldenCases() {
		t.Run(c.slug, func(t *testing.T) {
			res, err := discoverxfd.Discover(c.ds.Tree, c.ds.Schema, c.opts)
			if err != nil {
				t.Fatalf("%s: %v", c.ds.Name, err)
			}
			zeroTimes(res)
			var buf bytes.Buffer
			if err := discoverxfd.WriteJSON(&buf, res); err != nil {
				t.Fatalf("%s: %v", c.ds.Name, err)
			}
			path := filepath.Join("testdata", "golden", c.slug+".json")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden fixture (run with -update): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("%s: Result JSON differs from golden %s\n%s", c.ds.Name, path, diffHint(want, buf.Bytes()))
			}
		})
	}
}

// zeroTimes clears the wall-clock Stats fields — the only
// non-deterministic Result fields — so encoded results compare
// byte-identically.
func zeroTimes(res *discoverxfd.Result) {
	res.Stats.IntraTime, res.Stats.InterTime, res.Stats.WallTime = 0, 0, 0
}

// TestTracedResultJSONIdentical pins the tracer's zero semantic
// footprint: over every golden corpus and option set, a run with a
// live JSONL tracer attached must produce byte-identical Result JSON
// to the untraced run (tracing observes the pipeline, never steers
// it).
func TestTracedResultJSONIdentical(t *testing.T) {
	for _, c := range goldenCases() {
		t.Run(c.slug, func(t *testing.T) {
			plain, err := discoverxfd.Discover(c.ds.Tree, c.ds.Schema, c.opts)
			if err != nil {
				t.Fatalf("%s: %v", c.ds.Name, err)
			}
			opts := discoverxfd.Options{}
			if c.opts != nil {
				opts = *c.opts
			}
			var events bytes.Buffer
			opts.Trace = discoverxfd.NewJSONLTracer(&events)
			traced, err := discoverxfd.Discover(c.ds.Tree, c.ds.Schema, &opts)
			if err != nil {
				t.Fatalf("%s traced: %v", c.ds.Name, err)
			}
			if events.Len() == 0 {
				t.Fatalf("%s: traced run emitted no events", c.ds.Name)
			}
			zeroTimes(plain)
			zeroTimes(traced)
			var want, got bytes.Buffer
			if err := discoverxfd.WriteJSON(&want, plain); err != nil {
				t.Fatal(err)
			}
			if err := discoverxfd.WriteJSON(&got, traced); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want.Bytes(), got.Bytes()) {
				t.Errorf("%s: traced Result JSON differs from untraced\n%s",
					c.ds.Name, diffHint(want.Bytes(), got.Bytes()))
			}
		})
	}
}

// stripVolatile removes the timestamp, run-id, and measured-duration
// fields from each JSONL trace line, leaving only the deterministic
// event payload.
func stripVolatile(t *testing.T, raw []byte) []string {
	t.Helper()
	var out []string
	for i, line := range bytes.Split(bytes.TrimSpace(raw), []byte("\n")) {
		var ev map[string]any
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("trace line %d is not JSON: %v\n%s", i+1, err, line)
		}
		delete(ev, "t")
		delete(ev, "run")
		delete(ev, "ms")
		keys := make([]string, 0, len(ev))
		for k := range ev {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var b strings.Builder
		for _, k := range keys {
			fmt.Fprintf(&b, "%s=%v;", k, ev[k])
		}
		out = append(out, b.String())
	}
	return out
}

// TestTraceJSONLDeterministic pins serial-run trace determinism: two
// serial discoveries over the same corpus emit the same event
// sequence once the timestamp and run-id fields are stripped.
// Parallel option sets are skipped — worker interleaving legitimately
// reorders their relation spans and level events.
func TestTraceJSONLDeterministic(t *testing.T) {
	for _, c := range goldenCases() {
		if c.opts != nil && c.opts.Parallel {
			continue
		}
		t.Run(c.slug, func(t *testing.T) {
			runOnce := func() []string {
				opts := discoverxfd.Options{}
				if c.opts != nil {
					opts = *c.opts
				}
				var events bytes.Buffer
				opts.Trace = discoverxfd.NewJSONLTracer(&events)
				if _, err := discoverxfd.Discover(c.ds.Tree, c.ds.Schema, &opts); err != nil {
					t.Fatalf("%s: %v", c.ds.Name, err)
				}
				return stripVolatile(t, events.Bytes())
			}
			first, second := runOnce(), runOnce()
			if len(first) != len(second) {
				t.Fatalf("%s: event counts differ between identical serial runs: %d vs %d",
					c.ds.Name, len(first), len(second))
			}
			for i := range first {
				if first[i] != second[i] {
					t.Fatalf("%s: event %d differs between identical serial runs:\n  first:  %s\n  second: %s",
						c.ds.Name, i+1, first[i], second[i])
				}
			}
		})
	}
}

// diffHint locates the first differing line for a readable failure.
func diffHint(want, got []byte) string {
	wl := bytes.Split(want, []byte("\n"))
	gl := bytes.Split(got, []byte("\n"))
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(wl[i], gl[i]) {
			return fmt.Sprintf("first difference at line %d:\n  golden: %s\n  got:    %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("length differs: golden %d lines, got %d lines", len(wl), len(gl))
}
