package discoverxfd_test

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"discoverxfd"
	"discoverxfd/internal/xmlgen"
)

// -update regenerates the golden Result JSON fixtures under
// testdata/golden from the current engine. The committed fixtures were
// produced by the pre-Engine monolithic discover() path; the
// differential test below pins the staged Run/Engine pipeline to
// byte-identical output.
var updateGolden = flag.Bool("update", false, "rewrite testdata/golden fixtures")

// goldenCases pairs every generated example corpus document with the
// option sets whose Result JSON is pinned. Stats wall-clock fields are
// zeroed before encoding (the only non-deterministic Result fields);
// everything else — FDs, keys, redundancy witnesses, lattice and
// cache counters — must reproduce exactly.
func goldenCases() []struct {
	slug string
	ds   xmlgen.Dataset
	opts *discoverxfd.Options
} {
	return []struct {
		slug string
		ds   xmlgen.Dataset
		opts *discoverxfd.Options
	}{
		{"warehouse", xmlgen.Warehouse(xmlgen.DefaultWarehouse()), nil},
		{"warehouse_approx", xmlgen.Warehouse(xmlgen.DefaultWarehouse()), &discoverxfd.Options{ApproxError: 0.05}},
		{"warehouse_parallel", xmlgen.Warehouse(xmlgen.DefaultWarehouse()), &discoverxfd.Options{Parallel: true}},
		{"warehouse_intra", xmlgen.Warehouse(xmlgen.DefaultWarehouse()), &discoverxfd.Options{IntraOnly: true}},
		{"dblp", xmlgen.DBLP(xmlgen.DefaultDBLP()), nil},
		{"auction", xmlgen.Auction(xmlgen.DefaultAuction()), nil},
		{"mondial", xmlgen.Mondial(xmlgen.DefaultMondial()), nil},
		{"mondial_nosets", xmlgen.Mondial(xmlgen.DefaultMondial()), &discoverxfd.Options{NoSetElements: true}},
		{"catalog", xmlgen.Catalog(xmlgen.DefaultCatalog()), nil},
		{"psd", xmlgen.PSD(xmlgen.DefaultPSD()), nil},
	}
}

// TestResultJSONGolden is the refactor's differential harness: the
// public Discover path over the example corpus must emit byte-identical
// Result JSON to the committed pre-refactor fixtures.
func TestResultJSONGolden(t *testing.T) {
	for _, c := range goldenCases() {
		t.Run(c.slug, func(t *testing.T) {
			res, err := discoverxfd.Discover(c.ds.Tree, c.ds.Schema, c.opts)
			if err != nil {
				t.Fatalf("%s: %v", c.ds.Name, err)
			}
			res.Stats.IntraTime, res.Stats.InterTime = 0, 0
			var buf bytes.Buffer
			if err := discoverxfd.WriteJSON(&buf, res); err != nil {
				t.Fatalf("%s: %v", c.ds.Name, err)
			}
			path := filepath.Join("testdata", "golden", c.slug+".json")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden fixture (run with -update): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("%s: Result JSON differs from golden %s\n%s", c.ds.Name, path, diffHint(want, buf.Bytes()))
			}
		})
	}
}

// diffHint locates the first differing line for a readable failure.
func diffHint(want, got []byte) string {
	wl := bytes.Split(want, []byte("\n"))
	gl := bytes.Split(got, []byte("\n"))
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(wl[i], gl[i]) {
			return fmt.Sprintf("first difference at line %d:\n  golden: %s\n  got:    %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("length differs: golden %d lines, got %d lines", len(wl), len(gl))
}
