#!/usr/bin/env bash
# server_smoke.sh — end-to-end smoke test of the xfdd discovery
# service, exercising the robustness contract against a real listener:
# liveness/readiness, synchronous discovery, an async job observed
# over SSE, resident documents with incremental updates (PATCH
# /v1/documents), graceful degradation under a wall-clock deadline,
# overload shedding (429 + Retry-After), and a SIGTERM drain that
# completes in-flight work. CI runs it with the server built -race.
#
# Usage: scripts/server_smoke.sh [path-to-xfdd-binary]
# (no argument: builds the binary with -race into a temp dir)
set -euo pipefail

ADDR=127.0.0.1:8321
BASE="http://$ADDR"
WORK="$(mktemp -d)"
SERVER_PID=
cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
  rm -rf "$WORK"
}
trap cleanup EXIT

fail() { echo "server-smoke: FAIL: $*" >&2; exit 1; }
note() { echo "server-smoke: $*"; }

code() { # code <expected> <curl args...>
  local want="$1"; shift
  local got
  got="$(curl -s -o "$WORK/body" -w '%{http_code}' "$@")"
  [ "$got" = "$want" ] || fail "$* -> $got, want $want ($(head -c 200 "$WORK/body"))"
}

stat_field() { # stat_field <name>
  curl -sf "$BASE/v1/stats" | python3 -c "import sys,json; print(json.load(sys.stdin)[\"$1\"])"
}

XFDD="${1:-}"
if [ -z "$XFDD" ]; then
  note "building xfdd -race"
  go build -race -o "$WORK/xfdd" ./cmd/xfdd
  XFDD="$WORK/xfdd"
fi

note "generating corpora"
go run ./cmd/xfdgen -dataset warehouse > "$WORK/corpus.xml"
# Wide rows make the lattice expensive: width 16 finishes in seconds
# (the drain must complete it), width 18 takes far longer than any
# smoke deadline (so a 5s budget reliably truncates mid-discovery).
go run ./cmd/xfdgen -dataset wide -width 16 -scale 2 > "$WORK/hog.xml"
go run ./cmd/xfdgen -dataset wide -width 18 -scale 2 > "$WORK/slow.xml"

note "booting xfdd on $ADDR"
"$XFDD" -addr "$ADDR" -max-concurrent 1 -queue-depth -1 \
  -default-timeout 120s -max-timeout 120s -drain-timeout 120s \
  -trace "$WORK/smoke.trace" 2> "$WORK/xfdd.log" &
SERVER_PID=$!
for i in $(seq 1 100); do
  curl -sf -o /dev/null "$BASE/healthz" && break
  kill -0 "$SERVER_PID" 2>/dev/null || { cat "$WORK/xfdd.log" >&2; fail "server died on boot"; }
  sleep 0.1
done

note "stage 1: health"
code 200 "$BASE/healthz"
code 200 "$BASE/readyz"
code 200 "$BASE/v1/stats"
code 200 "$BASE/debug/vars"

note "stage 2: synchronous discovery"
code 200 --data-binary "@$WORK/corpus.xml" "$BASE/v1/discover?timeout=60s"
python3 -c "
import json,sys
r = json.load(open('$WORK/body'))
assert r['fds'], 'no FDs discovered'
assert not r['stats'].get('truncated'), 'unexpected truncation'
" || fail "sync result malformed"
code 400 --data-binary 'not xml' "$BASE/v1/discover"
code 400 --data-binary "@$WORK/corpus.xml" "$BASE/v1/discover?max_tuples=-1"

note "stage 2b: trace propagation on the 200 path"
TP_IN="00-0af7651916cd43dd8448eb211c80319c-b7ad6b7169203331-01"
curl -sf -D "$WORK/hdr200" -o /dev/null -H "traceparent: $TP_IN" \
  --data-binary "@$WORK/corpus.xml" "$BASE/v1/discover?timeout=60s" ||
  fail "traced discover failed"
grep -qi '^traceparent: 00-0af7651916cd43dd8448eb211c80319c-' "$WORK/hdr200" ||
  fail "200 does not echo the inbound trace id"
grep -qi "^traceparent: ${TP_IN}" "$WORK/hdr200" &&
  fail "200 echoed the caller's span id instead of minting one"
grep -qi '^x-request-id: ' "$WORK/hdr200" || fail "200 without X-Request-Id"

note "stage 3: async job with SSE progress"
JOB="$(curl -sf -X POST --data-binary "@$WORK/corpus.xml" "$BASE/v1/jobs" |
  python3 -c 'import sys,json; print(json.load(sys.stdin)["id"])')"
curl -sN --max-time 30 -H 'Accept: text/event-stream' \
  "$BASE/v1/jobs/$JOB/events" > "$WORK/sse" || fail "SSE stream failed"
for ev in run_start stage_start run_end done; do
  grep -q "^event: $ev\$" "$WORK/sse" || fail "SSE stream missing $ev event"
done
code 200 "$BASE/v1/jobs/$JOB/result"
python3 -c "import json; assert json.load(open('$WORK/body'))['fds']" ||
  fail "job result malformed"
code 404 "$BASE/v1/jobs/job-999999"

note "stage 4: resident documents and incremental updates"
DOC="$(curl -sf -X POST --data-binary "@$WORK/corpus.xml" "$BASE/v1/documents" |
  python3 -c 'import sys,json; print(json.load(sys.stdin)["id"])')"
code 200 -X POST "$BASE/v1/documents/$DOC/discover?timeout=60s"
python3 -c "import json; assert json.load(open('$WORK/body'))['fds']" ||
  fail "resident discover malformed"
cat > "$WORK/update.json" <<'EOF'
[{"op": "insert", "class": "/warehouse/state", "values": {"./name": "S99"}}]
EOF
code 200 -X PATCH --data-binary "@$WORK/update.json" "$BASE/v1/documents/$DOC"
KEY="$(python3 -c "import json; print(json.load(open('$WORK/body'))['keys'][0])")"
cat > "$WORK/update2.json" <<EOF
[{"op": "set", "class": "/warehouse/state", "key": $KEY, "attr": "./name", "value": "S98"},
 {"op": "delete", "class": "/warehouse/state", "key": $KEY}]
EOF
code 200 -X PATCH --data-binary "@$WORK/update2.json" "$BASE/v1/documents/$DOC"
code 200 -X POST "$BASE/v1/documents/$DOC/discover?timeout=60s"
python3 -c "import json; assert json.load(open('$WORK/body'))['fds']" ||
  fail "post-update discover malformed"
code 422 -X PATCH --data-binary '[{"op":"delete","class":"/warehouse/state","key":999999}]' \
  "$BASE/v1/documents/$DOC"
code 400 -X PATCH --data-binary 'not json' "$BASE/v1/documents/$DOC"
code 404 -X PATCH --data-binary '[{"op":"delete","class":"/x","key":1}]' "$BASE/v1/documents/doc-999999"
code 200 "$BASE/v1/documents"
[ "$(stat_field docUpdates)" = "2" ] || fail "docUpdates $(stat_field docUpdates), want 2"
[ "$(stat_field docUpdatesRejected)" = "1" ] || fail "docUpdatesRejected $(stat_field docUpdatesRejected), want 1"
code 200 -X DELETE "$BASE/v1/documents/$DOC"
code 404 "$BASE/v1/documents/$DOC"

note "stage 5: graceful degradation under deadline"
code 504 --data-binary "@$WORK/slow.xml" "$BASE/v1/discover?timeout=5s"
code 200 --data-binary "@$WORK/slow.xml" "$BASE/v1/discover?timeout=5s&degrade=truncate"
python3 -c "
import json
r = json.load(open('$WORK/body'))
assert r['stats']['truncated'], 'degrade=truncate result not marked truncated'
assert 'deadline' in r['stats']['truncatedReason'], r['stats']['truncatedReason']
" || fail "degraded result malformed"

note "stage 6: overload sheds with 429"
curl -s -o /dev/null -w '%{http_code}' --data-binary "@$WORK/hog.xml" \
  "$BASE/v1/discover" > "$WORK/hog.code" &
HOG_PID=$!
for i in $(seq 1 200); do
  [ "$(stat_field running)" = "1" ] && break
  sleep 0.1
done
[ "$(stat_field running)" = "1" ] || fail "hog request never started running"
code 429 --data-binary "@$WORK/corpus.xml" "$BASE/v1/discover"
curl -si -H "traceparent: $TP_IN" --data-binary "@$WORK/corpus.xml" \
  "$BASE/v1/discover" > "$WORK/hdr429"
grep -qi '^retry-after:' "$WORK/hdr429" || fail "429 without Retry-After"
grep -qi '^traceparent: 00-0af7651916cd43dd8448eb211c80319c-' "$WORK/hdr429" ||
  fail "429 does not echo the inbound trace id"
grep -qi '^x-request-id: ' "$WORK/hdr429" || fail "429 without X-Request-Id"

note "stage 6b: metrics exposition is valid and carries the contract"
curl -sf "$BASE/metrics" > "$WORK/metrics.prom" || fail "scraping /metrics"
go run ./cmd/promcheck "$WORK/metrics.prom"
for m in xfd_http_requests_total xfd_http_request_duration_seconds_bucket \
         xfd_engine_runs_started_total xfd_engine_runs_finished_total \
         xfd_requests_shed_total xfd_queue_depth xfd_running_runs \
         xfd_tenant_running go_goroutines; do
  grep -q "^$m" "$WORK/metrics.prom" || fail "exposition missing $m"
done
# The shed from this stage is attributed to its reason.
grep -q 'xfd_requests_shed_total{reason="queue_full"' "$WORK/metrics.prom" ||
  fail "shed counter missing the queue_full reason"

note "stage 7: SIGTERM drain completes in-flight work"
kill -TERM "$SERVER_PID"
for i in $(seq 1 100); do
  [ "$(curl -s -o /dev/null -w '%{http_code}' "$BASE/readyz")" = "503" ] && break
  sleep 0.1
done
code 503 "$BASE/readyz"
code 200 "$BASE/healthz"
code 503 --data-binary "@$WORK/corpus.xml" "$BASE/v1/discover"
code 503 -X POST --data-binary "@$WORK/corpus.xml" "$BASE/v1/jobs"
wait "$HOG_PID"
HOG_CODE="$(cat "$WORK/hog.code")"
[ "$HOG_CODE" = "200" ] || fail "in-flight run got $HOG_CODE during drain, want 200"
RC=0; wait "$SERVER_PID" || RC=$?
SERVER_PID=
[ "$RC" = "0" ] || { cat "$WORK/xfdd.log" >&2; fail "server exited $RC after drain, want 0"; }

note "stage 8: trace flushed and schema-valid"
go run ./cmd/tracecheck "$WORK/smoke.trace"

note "PASS"
