package discoverxfd_test

import (
	"strings"
	"testing"

	"discoverxfd"
)

const libraryXML = `
<library>
  <shelf>
    <room>North</room>
    <book><isbn>1</isbn><title>Go</title><publisher>Addison</publisher></book>
    <book><isbn>2</isbn><title>XML</title><publisher>Wiley</publisher></book>
  </shelf>
  <shelf>
    <room>South</room>
    <book><isbn>1</isbn><title>Go</title><publisher>Addison</publisher></book>
  </shelf>
</library>`

func TestPublicAPIEndToEnd(t *testing.T) {
	doc, err := discoverxfd.ParseDocument(libraryXML)
	if err != nil {
		t.Fatal(err)
	}
	s, err := discoverxfd.InferSchema(doc)
	if err != nil {
		t.Fatal(err)
	}
	if err := discoverxfd.Conform(doc, s); err != nil {
		t.Fatalf("inferred schema must accept its document: %v", err)
	}
	res, err := discoverxfd.Discover(doc, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, fd := range res.FDs {
		if fd.String() == "{./isbn} -> ./title w.r.t. C(/library/shelf/book)" {
			found = true
		}
	}
	if !found {
		t.Fatalf("isbn -> title not discovered; FDs: %v", res.FDs)
	}
	if len(res.Redundancies) != len(res.FDs) {
		t.Fatalf("redundancies (%d) must pair FDs (%d)", len(res.Redundancies), len(res.FDs))
	}
}

func TestDiscoverWithNilSchemaAndOptions(t *testing.T) {
	doc, err := discoverxfd.ParseDocument(libraryXML)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := discoverxfd.Discover(doc, nil, nil); err != nil {
		t.Fatalf("nil schema/options should infer and default: %v", err)
	}
}

func TestDiscoverRejectsNonConforming(t *testing.T) {
	doc, _ := discoverxfd.ParseDocument(libraryXML)
	s, err := discoverxfd.ParseSchema("other: Rcd\n  x: str")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := discoverxfd.Discover(doc, s, nil); err == nil {
		t.Fatal("expected a conformance error")
	}
}

func TestOptionsIntraOnly(t *testing.T) {
	doc, _ := discoverxfd.ParseDocument(libraryXML)
	res, err := discoverxfd.Discover(doc, nil, &discoverxfd.Options{IntraOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, fd := range res.FDs {
		if fd.Inter {
			t.Fatalf("IntraOnly produced inter FD %s", fd)
		}
	}
}

func TestOptionsNoSetElements(t *testing.T) {
	doc, _ := discoverxfd.ParseDocument(libraryXML)
	res, err := discoverxfd.Discover(doc, nil, &discoverxfd.Options{NoSetElements: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, fd := range res.FDs {
		for _, p := range append([]discoverxfd.RelPath{fd.RHS}, fd.LHS...) {
			if strings.HasSuffix(string(p), "/book") || strings.HasSuffix(string(p), "/shelf") {
				t.Fatalf("NoSetElements produced set path in %s", fd)
			}
		}
	}
}

func TestEvaluatePublic(t *testing.T) {
	doc, _ := discoverxfd.ParseDocument(libraryXML)
	h, err := discoverxfd.BuildHierarchy(doc, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := discoverxfd.Evaluate(h, "/library/shelf/book",
		[]discoverxfd.RelPath{"./isbn"}, "./title")
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Holds || ev.LHSIsKey || ev.Witnesses != 1 {
		t.Fatalf("Evaluate: %+v", ev)
	}
}

func TestWriteReport(t *testing.T) {
	doc, _ := discoverxfd.ParseDocument(libraryXML)
	res, err := discoverxfd.Discover(doc, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := discoverxfd.ReportString(res)
	for _, want := range []string{
		"Redundancy-indicating XML FDs",
		"tuple class C(/library/shelf/book)",
		"XML Keys",
		"Run:",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestLoadDocumentFileError(t *testing.T) {
	if _, err := discoverxfd.LoadDocumentFile("/nonexistent/file.xml"); err == nil {
		t.Fatal("expected an error for a missing file")
	}
}

func TestDiscoverStreamFacade(t *testing.T) {
	doc, _ := discoverxfd.ParseDocument(libraryXML)
	s, err := discoverxfd.InferSchema(doc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := discoverxfd.DiscoverStream(strings.NewReader(libraryXML), s, nil)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, fd := range res.FDs {
		if fd.String() == "{./isbn} -> ./title w.r.t. C(/library/shelf/book)" {
			found = true
		}
	}
	if !found {
		t.Fatalf("streamed discovery missed isbn -> title: %v", res.FDs)
	}
	// Streaming requires an explicit schema.
	if _, err := discoverxfd.DiscoverStream(strings.NewReader(libraryXML), nil, nil); err == nil {
		t.Fatal("nil schema must be rejected in streaming mode")
	}
}
