package discoverxfd

import (
	"encoding/json"
	"fmt"
	"io"

	"discoverxfd/internal/relation"
)

// Incremental updates. A hierarchy built by BuildHierarchy (or
// Discover) from an in-memory document stays updatable: ApplyUpdate
// mutates it in place — tuple value changes, inserts, deletes — and
// the engine patches its warm partitions instead of recomputing them,
// so the next DiscoverHierarchy call over the same *Hierarchy runs
// incrementally. Streamed hierarchies are not updatable
// (ErrNotUpdatable); rebuild those from the source.

type (
	// Update is one document mutation: a tuple value change, insert,
	// or delete, addressed by tuple class and pivot node key.
	Update = relation.Update
	// UpdateOp selects what an Update does (OpSet, OpInsert,
	// OpDelete).
	UpdateOp = relation.UpdateOp
	// Changeset reports what an ApplyUpdate batch changed: the
	// affected pivot keys (newly assigned ones for inserts) and the
	// per-relation dirty columns and rows.
	Changeset = relation.Changeset
	// RelChange is one relation's entry in a Changeset.
	RelChange = relation.RelChange
)

// Update operations.
const (
	OpSet    = relation.OpSet
	OpInsert = relation.OpInsert
	OpDelete = relation.OpDelete
)

// ErrNotUpdatable is returned by ApplyUpdate for hierarchies that did
// not retain encoding state (streamed builds).
var ErrNotUpdatable = relation.ErrNotUpdatable

// ApplyUpdate applies a batch of updates to the hierarchy and patches
// the engine's warm partition layer: untouched partitions are kept,
// dirty single-column partitions spliced, and only stale multi-column
// sets dropped. Updates serialize against running discoveries on the
// same hierarchy. The returned Changeset's Keys hold, per op, the
// affected pivot key — for inserts, the new tuple's key, which later
// batches use to address it.
//
// On error the batch stops at the failing op: earlier ops remain
// applied to the document, and the engine drops the hierarchy's warm
// partitions so no stale state can be served. Callers wanting
// all-or-nothing semantics should validate scripts first (or rebuild
// the hierarchy on error).
func (e *Engine) ApplyUpdate(h *Hierarchy, ops []Update) (*Changeset, error) {
	return e.core.ApplyUpdate(h, ops)
}

// updateJSON is the wire form of one update in a JSON update script.
type updateJSON struct {
	Op     string            `json:"op"`
	Class  string            `json:"class"`
	Key    int               `json:"key,omitempty"`
	Attr   string            `json:"attr,omitempty"`
	Value  *string           `json:"value,omitempty"`
	Parent int               `json:"parent,omitempty"`
	Values map[string]string `json:"values,omitempty"`
}

// ParseUpdates decodes a JSON update script: an array of objects
//
//	{"op": "set",    "class": "/warehouse/state/store/book", "key": 17,
//	 "attr": "./price", "value": "35"}
//	{"op": "insert", "class": "/warehouse/state/store/book", "parent": 9,
//	 "values": {"./ISBN": "555", "./title": "New"}}
//	{"op": "delete", "class": "/warehouse/state/store/book", "key": 17}
//
// into a batch for ApplyUpdate. Classes are pivot paths, keys are the
// @key values discovery reports in witnesses, and attributes are
// pivot-relative paths. Parent may be omitted for top-level classes
// (their parent tuple is the document root).
func ParseUpdates(r io.Reader) ([]Update, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var raw []updateJSON
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("discoverxfd: update script: %w", err)
	}
	ops := make([]Update, 0, len(raw))
	for i, u := range raw {
		if u.Class == "" {
			return nil, fmt.Errorf("discoverxfd: update %d: missing class", i)
		}
		op := Update{Class: Path(u.Class)}
		switch u.Op {
		case "set":
			if u.Key == 0 {
				return nil, fmt.Errorf("discoverxfd: update %d: set requires a key", i)
			}
			if u.Attr == "" || u.Value == nil {
				return nil, fmt.Errorf("discoverxfd: update %d: set requires attr and value", i)
			}
			op.Op, op.Key, op.Attr, op.Value = OpSet, u.Key, RelPath(u.Attr), *u.Value
		case "insert":
			op.Op, op.Parent = OpInsert, u.Parent
			op.Values = make(map[RelPath]string, len(u.Values))
			for k, v := range u.Values {
				op.Values[RelPath(k)] = v
			}
		case "delete":
			if u.Key == 0 {
				return nil, fmt.Errorf("discoverxfd: update %d: delete requires a key", i)
			}
			op.Op, op.Key = OpDelete, u.Key
		default:
			return nil, fmt.Errorf("discoverxfd: update %d: unknown op %q", i, u.Op)
		}
		ops = append(ops, op)
	}
	return ops, nil
}
