package discoverxfd

import (
	"context"
	"errors"
	"fmt"
	"time"

	"discoverxfd/internal/datatree"
)

// ErrBadLimits is returned when a Limits value is nonsensical — a
// negative budget or bound. It is a usage error, not a runtime one:
// the CLIs classify it as exit status 2 and xfdd as HTTP 400.
// Classify with errors.Is through any wrapping the call path adds.
var ErrBadLimits = errors.New("discoverxfd: invalid limits")

// Limits bounds the resources a single discovery call may consume.
// The zero value applies only the parser's default nesting bound;
// every other budget is off.
//
// Two enforcement regimes apply, by layer:
//
//   - Parse limits (MaxDepth, MaxNodes) are hard errors: a document
//     that exceeds them is hostile or malformed, and a partial data
//     tree would be useless, so parsing fails fast with a "datatree:"
//     error.
//   - Discovery budgets (MaxTuples, MaxLatticeLevel, Deadline)
//     degrade gracefully: when one runs out, the pipeline keeps the
//     work already done and returns a partial Result with
//     Stats.Truncated and Stats.TruncatedReason set — never an error
//     and never a hang. Every FD/Key in a truncated Result holds on
//     the data that was examined, but constraints may be missing,
//     and, if tuple ingestion itself was truncated, a reported
//     constraint may not hold on the full document.
//
// Cancellation is separate from both: cancelling the context passed
// to a ...Context function aborts the call with an error. A context
// *deadline*, however, is a wall-clock budget like Deadline: the run
// honors the earlier of the two and truncates gracefully when it
// arrives (see deadlineFor), so servers can express per-request
// budgets through the context without forfeiting partial results.
//
// Every field must be non-negative; a negative budget is meaningless
// and fails fast with ErrBadLimits (see Validate) rather than being
// silently reinterpreted.
type Limits struct {
	// MaxDepth bounds XML element nesting while parsing. 0 applies
	// the parser default (datatree.DefaultMaxDepth, 10000).
	MaxDepth int
	// MaxNodes bounds the number of data nodes materialized while
	// parsing (elements, attribute leaves, and text leaves). 0 means
	// unlimited.
	MaxNodes int
	// MaxTuples caps the total tuples ingested into the hierarchical
	// representation across all tuple classes; beyond it ingestion
	// stops and the result is marked truncated. 0 means unlimited.
	MaxTuples int
	// MaxLatticeLevel caps the attribute-set size explored in any
	// relation's lattice (the level-wise search is worst-case
	// exponential in attribute count). Hitting the cap marks the
	// result truncated. 0 means unbounded.
	MaxLatticeLevel int
	// Deadline is a wall-clock budget for the whole call, measured
	// from its start. On expiry the traversal stops at the next check
	// and the partial Result is returned with Stats.Truncated set.
	// 0 means no budget.
	Deadline time.Duration
	// MaxPartitionBytes caps the estimated memory the run-wide
	// partition cache retains across tuple classes. Unlike the budgets
	// above it never truncates results: a relation whose traversal has
	// finished is trimmed back to its cheap single-column partitions,
	// and anything needed again is recomputed from those — over-budget
	// runs get slower, not lossier. The class currently being traversed
	// is never trimmed (MaxLatticeLevel is the lever for bounding a
	// single class's working set). 0 means unlimited.
	MaxPartitionBytes int64
}

// Validate checks every field for sense: all budgets and bounds must
// be non-negative (0 always means "default" or "off", never a
// negative sentinel). The first offending field is reported in an
// error wrapping ErrBadLimits. Every Engine entry point validates its
// limits up front, so a bad value fails fast instead of silently
// passing through as "unlimited".
func (l Limits) Validate() error {
	switch {
	case l.MaxDepth < 0:
		return fmt.Errorf("%w: MaxDepth %d is negative (0 means the parser default)", ErrBadLimits, l.MaxDepth)
	case l.MaxNodes < 0:
		return fmt.Errorf("%w: MaxNodes %d is negative (0 means unlimited)", ErrBadLimits, l.MaxNodes)
	case l.MaxTuples < 0:
		return fmt.Errorf("%w: MaxTuples %d is negative (0 means unlimited)", ErrBadLimits, l.MaxTuples)
	case l.MaxLatticeLevel < 0:
		return fmt.Errorf("%w: MaxLatticeLevel %d is negative (0 means unbounded)", ErrBadLimits, l.MaxLatticeLevel)
	case l.Deadline < 0:
		return fmt.Errorf("%w: Deadline %v is in the past (0 means no budget)", ErrBadLimits, l.Deadline)
	case l.MaxPartitionBytes < 0:
		return fmt.Errorf("%w: MaxPartitionBytes %d is negative (0 means unlimited)", ErrBadLimits, l.MaxPartitionBytes)
	}
	return nil
}

// parseLimits maps the parse-layer fields onto the datatree limits,
// resolving 0 to the parser default depth.
func (l Limits) parseLimits() datatree.ParseLimits {
	pl := datatree.ParseLimits{MaxDepth: l.MaxDepth, MaxNodes: l.MaxNodes}
	if pl.MaxDepth == 0 {
		pl.MaxDepth = datatree.DefaultMaxDepth
	}
	return pl
}

// deadlineFrom converts the relative budget into the absolute instant
// the lower layers check against; zero means no budget.
func (l Limits) deadlineFrom(now time.Time) time.Time {
	if l.Deadline <= 0 {
		return time.Time{}
	}
	return now.Add(l.Deadline)
}

// deadlineFor composes the call's wall-clock budget: the earlier of
// the Limits.Deadline budget (relative to now) and the context's own
// deadline, either of which may be absent. The composed instant feeds
// the governor's graceful-truncation path, so a run bounded by a
// context deadline returns the partial Result found so far instead of
// dying with a cancellation error when the clock runs out — explicit
// cancellation (context.CancelFunc) still aborts with an error.
func (l Limits) deadlineFor(ctx context.Context, now time.Time) time.Time {
	d := l.deadlineFrom(now)
	if ctx == nil {
		return d
	}
	if cd, ok := ctx.Deadline(); ok && (d.IsZero() || cd.Before(d)) {
		d = cd
	}
	return d
}

// limits returns the configured Limits, nil-safe.
func (o *Options) limits() Limits {
	if o == nil {
		return Limits{}
	}
	return o.Limits
}
