package discoverxfd

import (
	"time"

	"discoverxfd/internal/datatree"
)

// Limits bounds the resources a single discovery call may consume.
// The zero value applies only the parser's default nesting bound;
// every other budget is off.
//
// Two enforcement regimes apply, by layer:
//
//   - Parse limits (MaxDepth, MaxNodes) are hard errors: a document
//     that exceeds them is hostile or malformed, and a partial data
//     tree would be useless, so parsing fails fast with a "datatree:"
//     error.
//   - Discovery budgets (MaxTuples, MaxLatticeLevel, Deadline)
//     degrade gracefully: when one runs out, the pipeline keeps the
//     work already done and returns a partial Result with
//     Stats.Truncated and Stats.TruncatedReason set — never an error
//     and never a hang. Every FD/Key in a truncated Result holds on
//     the data that was examined, but constraints may be missing,
//     and, if tuple ingestion itself was truncated, a reported
//     constraint may not hold on the full document.
//
// Cancellation is separate from both: cancelling the context passed
// to a ...Context function aborts the call with an error.
type Limits struct {
	// MaxDepth bounds XML element nesting while parsing. 0 applies
	// the parser default (datatree.DefaultMaxDepth, 10000); negative
	// lifts the bound entirely.
	MaxDepth int
	// MaxNodes bounds the number of data nodes materialized while
	// parsing (elements, attribute leaves, and text leaves). 0 means
	// unlimited.
	MaxNodes int
	// MaxTuples caps the total tuples ingested into the hierarchical
	// representation across all tuple classes; beyond it ingestion
	// stops and the result is marked truncated. 0 means unlimited.
	MaxTuples int
	// MaxLatticeLevel caps the attribute-set size explored in any
	// relation's lattice (the level-wise search is worst-case
	// exponential in attribute count). Hitting the cap marks the
	// result truncated. 0 means unbounded.
	MaxLatticeLevel int
	// Deadline is a wall-clock budget for the whole call, measured
	// from its start. On expiry the traversal stops at the next check
	// and the partial Result is returned with Stats.Truncated set.
	// 0 means no budget.
	Deadline time.Duration
	// MaxPartitionBytes caps the estimated memory the run-wide
	// partition cache retains across tuple classes. Unlike the budgets
	// above it never truncates results: a relation whose traversal has
	// finished is trimmed back to its cheap single-column partitions,
	// and anything needed again is recomputed from those — over-budget
	// runs get slower, not lossier. The class currently being traversed
	// is never trimmed (MaxLatticeLevel is the lever for bounding a
	// single class's working set). 0 means unlimited.
	MaxPartitionBytes int64
}

// parseLimits maps the parse-layer fields onto the datatree limits,
// resolving 0 to the parser default depth.
func (l Limits) parseLimits() datatree.ParseLimits {
	pl := datatree.ParseLimits{MaxDepth: l.MaxDepth, MaxNodes: l.MaxNodes}
	if pl.MaxDepth == 0 {
		pl.MaxDepth = datatree.DefaultMaxDepth
	}
	return pl
}

// deadlineFrom converts the relative budget into the absolute instant
// the lower layers check against; zero means no budget.
func (l Limits) deadlineFrom(now time.Time) time.Time {
	if l.Deadline <= 0 {
		return time.Time{}
	}
	return now.Add(l.Deadline)
}

// limits returns the configured Limits, nil-safe.
func (o *Options) limits() Limits {
	if o == nil {
		return Limits{}
	}
	return o.Limits
}
