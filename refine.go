package discoverxfd

import (
	"discoverxfd/internal/refine"
)

// Suggestion is one proposed schema refinement (see
// SuggestRefinements).
type Suggestion = refine.Suggestion

// SuggestRefinements turns a discovery result into ranked
// schema-refinement actions in the XML-Normal-Form spirit: each
// redundancy-indicating FD is repaired by moving its RHS element into
// a new set element keyed by the LHS. Suggestions are ranked by the
// redundant values they would save.
func SuggestRefinements(h *Hierarchy, res *Result) []Suggestion {
	return refine.Suggest(h, res)
}

// ApplyRefinement performs one suggested repair on the document in
// place: it hoists one (LHS, RHS) pair per distinct LHS value into a
// new top-level lookup element and removes the now-derivable RHS
// nodes, returning how many RHS occurrences were removed. Only
// intra-relation FDs over leaf paths (with a leaf or simple-set RHS)
// are supported; re-infer the schema to keep working with the
// refined document.
func ApplyRefinement(doc *Document, h *Hierarchy, fd FD) (int, error) {
	return refine.Apply(doc, h, fd)
}
