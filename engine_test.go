package discoverxfd_test

import (
	"context"
	"encoding/json"
	"expvar"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"discoverxfd"
	"discoverxfd/internal/xmlgen"
)

// sameConstraints reports whether two Results agree on every semantic
// field. Stats is deliberately excluded: warm engine runs hit the
// shared partition layer, so cache counters (legitimately) differ
// between a cold and a warm run of the same discovery.
func sameConstraints(a, b *discoverxfd.Result) error {
	if !reflect.DeepEqual(a.FDs, b.FDs) {
		return fmt.Errorf("FDs differ: %v vs %v", a.FDs, b.FDs)
	}
	if !reflect.DeepEqual(a.Keys, b.Keys) {
		return fmt.Errorf("Keys differ: %v vs %v", a.Keys, b.Keys)
	}
	if !reflect.DeepEqual(a.Redundancies, b.Redundancies) {
		return fmt.Errorf("Redundancies differ: %v vs %v", a.Redundancies, b.Redundancies)
	}
	if !reflect.DeepEqual(a.ApproxFDs, b.ApproxFDs) {
		return fmt.Errorf("ApproxFDs differ: %v vs %v", a.ApproxFDs, b.ApproxFDs)
	}
	return nil
}

// TestEngineConcurrentDiscover drives one shared Engine from many
// goroutines — mixed hierarchies, repeated runs over the same
// hierarchy (the warm-partition fast path), and intra-only calls —
// and checks every run reproduces its cold reference. Run under
// -race, this is the engine's concurrency-safety gate (a dedicated CI
// step exercises it).
func TestEngineConcurrentDiscover(t *testing.T) {
	warehouse := xmlgen.Warehouse(xmlgen.DefaultWarehouse())
	dblp := xmlgen.DBLP(xmlgen.DefaultDBLP())
	opts := &discoverxfd.Options{ApproxError: 0.05}

	eng := discoverxfd.NewEngine(opts)
	hw, err := eng.BuildHierarchy(context.Background(), warehouse.Tree, warehouse.Schema)
	if err != nil {
		t.Fatal(err)
	}
	hd, err := eng.BuildHierarchy(context.Background(), dblp.Tree, dblp.Schema)
	if err != nil {
		t.Fatal(err)
	}

	// Cold references from one-shot engines.
	wantW, err := discoverxfd.DiscoverHierarchy(hw, opts)
	if err != nil {
		t.Fatal(err)
	}
	wantD, err := discoverxfd.DiscoverHierarchy(hd, opts)
	if err != nil {
		t.Fatal(err)
	}

	const workers = 12
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h, want := hw, wantW
			if i%3 == 1 {
				h, want = hd, wantD
			}
			// Each worker runs twice so later runs exercise the warm
			// layer seeded by earlier ones.
			for run := 0; run < 2; run++ {
				res, err := eng.DiscoverHierarchy(context.Background(), h)
				if err != nil {
					errs[i] = err
					return
				}
				if err := sameConstraints(res, want); err != nil {
					errs[i] = fmt.Errorf("worker %d run %d: %w", i, run, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

// TestEngineReuseMatchesOneShot pins the warm path's semantics: a
// second Discover over the same untouched hierarchy (replayed from
// the warm layer's subtree memo, skipping the lattice entirely)
// returns the same constraints as the first.
func TestEngineReuseMatchesOneShot(t *testing.T) {
	ds := xmlgen.Warehouse(xmlgen.DefaultWarehouse())
	eng := discoverxfd.NewEngine(nil)
	h, err := eng.BuildHierarchy(context.Background(), ds.Tree, ds.Schema)
	if err != nil {
		t.Fatal(err)
	}
	first, err := eng.DiscoverHierarchy(context.Background(), h)
	if err != nil {
		t.Fatal(err)
	}
	second, err := eng.DiscoverHierarchy(context.Background(), h)
	if err != nil {
		t.Fatal(err)
	}
	if err := sameConstraints(first, second); err != nil {
		t.Fatal(err)
	}
	if second.Stats.RelationsReused != first.Stats.Relations {
		t.Errorf("warm run reused %d of %d relations",
			second.Stats.RelationsReused, first.Stats.Relations)
	}
}

// TestEngineFullPipeline drives the document-level engine methods —
// load, build, discover, evaluate, check — through one Engine value.
func TestEngineFullPipeline(t *testing.T) {
	ds := xmlgen.Warehouse(xmlgen.DefaultWarehouse())
	eng := discoverxfd.NewEngine(&discoverxfd.Options{})
	ctx := context.Background()

	res, err := eng.Discover(ctx, ds.Tree, ds.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FDs) == 0 || len(res.Keys) == 0 {
		t.Fatalf("expected FDs and keys, got %d / %d", len(res.FDs), len(res.Keys))
	}

	h, err := eng.BuildHierarchy(ctx, ds.Tree, ds.Schema)
	if err != nil {
		t.Fatal(err)
	}
	fd := res.FDs[0]
	ev, err := eng.Evaluate(ctx, h, fd.Class, fd.LHS, fd.RHS)
	if err != nil {
		t.Fatal(err)
	}
	if !ev.Holds {
		t.Errorf("discovered FD %s does not hold under Evaluate", fd)
	}

	c, err := discoverxfd.ParseConstraint(fd.String())
	if err != nil {
		t.Fatal(err)
	}
	checks, err := eng.CheckConstraints(ctx, h, []discoverxfd.Constraint{c})
	if err != nil {
		t.Fatal(err)
	}
	if len(checks) != 1 || !checks[0].Holds {
		t.Errorf("CheckConstraints on discovered FD: %+v", checks)
	}
}

// TestEngineMetricsConcurrent drives one shared Engine from 12
// workers and checks that the Metrics snapshot agrees exactly with
// the per-run Stats the workers observed. Run under -race alongside
// TestEngineConcurrentDiscover, this is the counters' consistency and
// race-freedom gate.
func TestEngineMetricsConcurrent(t *testing.T) {
	ds := xmlgen.Warehouse(xmlgen.DefaultWarehouse())
	eng := discoverxfd.NewEngine(&discoverxfd.Options{Parallel: true})
	h, err := eng.BuildHierarchy(context.Background(), ds.Tree, ds.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if m := eng.Metrics(); m.RunsStarted != 0 || m.Totals.NodesVisited != 0 {
		t.Fatalf("fresh engine has non-zero metrics: %+v", m)
	}

	const workers, runsPer = 12, 3
	stats := make([]discoverxfd.Stats, workers*runsPer)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := 0; r < runsPer; r++ {
				res, err := eng.DiscoverHierarchy(context.Background(), h)
				if err != nil {
					errs[i] = err
					return
				}
				stats[i*runsPer+r] = res.Stats
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	m := eng.Metrics()
	total := int64(workers * runsPer)
	if m.RunsStarted != total || m.RunsFinished != total || m.RunsFailed != 0 || m.RunsTruncated != 0 {
		t.Errorf("run counters = %+v, want %d started/finished, 0 failed/truncated", m, total)
	}
	if m.WarmSeeded < 1 || m.WarmSeeded > total {
		t.Errorf("WarmSeeded = %d, want within [1, %d]", m.WarmSeeded, total)
	}

	var want discoverxfd.Stats
	var peak int64
	for _, st := range stats {
		want.Relations += st.Relations
		want.Tuples += st.Tuples
		want.NodesVisited += st.NodesVisited
		want.PartitionsComputed += st.PartitionsComputed
		want.ParallelProducts += st.ParallelProducts
		want.PartitionCacheHits += st.PartitionCacheHits
		want.PartitionCacheMisses += st.PartitionCacheMisses
		want.PartitionCacheEvictions += st.PartitionCacheEvictions
		want.TargetsCreated += st.TargetsCreated
		want.TargetsPropagated += st.TargetsPropagated
		want.TargetsDropped += st.TargetsDropped
		want.TargetChecks += st.TargetChecks
		want.WallTime += st.WallTime
		if st.PartitionCachePeakBytes > peak {
			peak = st.PartitionCachePeakBytes
		}
	}
	got := m.Totals
	if got.Relations != want.Relations || got.Tuples != want.Tuples ||
		got.NodesVisited != want.NodesVisited ||
		got.PartitionsComputed != want.PartitionsComputed ||
		got.ParallelProducts != want.ParallelProducts ||
		got.PartitionCacheHits != want.PartitionCacheHits ||
		got.PartitionCacheMisses != want.PartitionCacheMisses ||
		got.PartitionCacheEvictions != want.PartitionCacheEvictions ||
		got.TargetsCreated != want.TargetsCreated ||
		got.TargetsPropagated != want.TargetsPropagated ||
		got.TargetsDropped != want.TargetsDropped ||
		got.TargetChecks != want.TargetChecks {
		t.Errorf("Totals disagree with summed run Stats:\n got %+v\nwant %+v", got, want)
	}
	if got.WallTime != want.WallTime || got.WallTime <= 0 {
		t.Errorf("Totals.WallTime = %v, want %v (> 0)", got.WallTime, want.WallTime)
	}
	if m.CacheHighWaterBytes != peak || got.PartitionCachePeakBytes != peak {
		t.Errorf("high-water = %d (totals %d), want max run peak %d",
			m.CacheHighWaterBytes, got.PartitionCachePeakBytes, peak)
	}

	// Direct evaluations count separately from runs.
	before := m.Evaluations
	if _, err := eng.Evaluate(context.Background(), h, ds.GroundTruth[0].Class,
		ds.GroundTruth[0].LHS, ds.GroundTruth[0].RHS); err != nil {
		t.Fatal(err)
	}
	if after := eng.Metrics().Evaluations; after != before+1 {
		t.Errorf("Evaluations = %d, want %d", after, before+1)
	}
}

// TestEnginePublishExpvar checks the expvar exporter renders a live
// Metrics snapshot under the published name.
func TestEnginePublishExpvar(t *testing.T) {
	ds := xmlgen.Warehouse(xmlgen.DefaultWarehouse())
	eng := discoverxfd.NewEngine(nil)
	eng.PublishExpvar("xfd_engine_test")
	h, err := eng.BuildHierarchy(context.Background(), ds.Tree, ds.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.DiscoverHierarchy(context.Background(), h); err != nil {
		t.Fatal(err)
	}
	v := expvar.Get("xfd_engine_test")
	if v == nil {
		t.Fatal("metrics var not published")
	}
	var m discoverxfd.Metrics
	if err := json.Unmarshal([]byte(v.String()), &m); err != nil {
		t.Fatalf("published metrics are not JSON: %v\n%s", err, v.String())
	}
	if m.RunsStarted != 1 || m.RunsFinished != 1 {
		t.Errorf("published snapshot = %+v, want 1 run", m)
	}
}

// TestPublishExpvarIdempotent is the duplicate-name regression: two
// engines publishing under one name in one process must not trip
// expvar's duplicate-name panic, and the later publisher must win the
// name.
func TestPublishExpvarIdempotent(t *testing.T) {
	ds := xmlgen.Warehouse(xmlgen.DefaultWarehouse())
	first := discoverxfd.NewEngine(nil)
	first.PublishExpvar("xfd_engine_idempotent_test")

	second := discoverxfd.NewEngine(nil)
	second.PublishExpvar("xfd_engine_idempotent_test") // must not panic
	if _, err := second.Discover(context.Background(), ds.Tree, ds.Schema); err != nil {
		t.Fatal(err)
	}

	v := expvar.Get("xfd_engine_idempotent_test")
	if v == nil {
		t.Fatal("metrics var not published")
	}
	var m discoverxfd.Metrics
	if err := json.Unmarshal([]byte(v.String()), &m); err != nil {
		t.Fatalf("published metrics are not JSON: %v\n%s", err, v.String())
	}
	if m.RunsFinished != 1 {
		t.Errorf("published RunsFinished = %d, want the second engine's run", m.RunsFinished)
	}
	if got := first.Metrics().RunsFinished; got != 0 {
		t.Errorf("first engine ran %d times, want 0 — scrape must read the latest publisher", got)
	}
}
