package discoverxfd

import (
	"context"
	"fmt"

	"discoverxfd/internal/core"
)

// Constraint is a parsed FD or Key specification in the paper's
// notation (see ParseConstraint).
type Constraint = core.Constraint

// ParseFD parses an XML FD written in the paper's notation, e.g.
//
//	{../contact/name, ./ISBN} -> ./price w.r.t. C(/warehouse/state/store/book)
func ParseFD(s string) (FD, error) { return core.ParseFD(s) }

// ParseConstraint parses an FD or a Key specification, e.g.
//
//	{./ISBN} KEY of C(/warehouse/state/store/book)
func ParseConstraint(s string) (Constraint, error) { return core.ParseConstraint(s) }

// ParseConstraints parses a multi-line constraint file: one
// constraint per line, blank lines and '#' comments ignored.
func ParseConstraints(text string) ([]Constraint, error) { return core.ParseConstraints(text) }

// CheckResult is the outcome of checking one constraint against a
// document.
type CheckResult struct {
	Constraint Constraint
	// Holds reports whether the constraint is satisfied (for Keys:
	// whether the LHS uniquely identifies each tuple).
	Holds bool
	// Violations counts violating tuples (FDs) or duplicated tuples
	// (Keys).
	Violations int
	// Witnesses counts redundant values an FD witnesses (0 for Keys).
	Witnesses int
	// G3Error is the fraction of tuples to remove for an FD to hold
	// exactly (0 for Keys and satisfied FDs).
	G3Error float64
}

func (r CheckResult) String() string {
	status := "OK"
	if !r.Holds {
		status = fmt.Sprintf("VIOLATED (%d tuple(s), g3=%.4f)", r.Violations, r.G3Error)
	} else if r.Witnesses > 0 {
		status = fmt.Sprintf("OK (%d redundant value(s))", r.Witnesses)
	}
	return fmt.Sprintf("%-8s %s", status, r.Constraint)
}

// CheckConstraints evaluates each constraint against the hierarchy,
// independent of discovery — the regression-testing workflow: pin the
// constraints your data must satisfy and fail CI when an update
// breaks one.
func CheckConstraints(h *Hierarchy, cs []Constraint) ([]CheckResult, error) {
	return CheckConstraintsContext(context.Background(), h, cs)
}

// CheckConstraintsContext is CheckConstraints with cancellation,
// checked per constraint.
func CheckConstraintsContext(ctx context.Context, h *Hierarchy, cs []Constraint) ([]CheckResult, error) {
	return NewEngine(nil).CheckConstraints(ctx, h, cs)
}
