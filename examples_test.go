package discoverxfd_test

import (
	"os/exec"
	"strings"
	"testing"
)

// TestExamplesRun executes every example main end to end and checks a
// signature line of its output, keeping the documentation runnable.
func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cases := []struct {
		dir  string
		want []string
	}{
		{"quickstart", []string{"inferred schema:", "Redundancy-indicating XML FDs"}},
		{"warehouse", []string{
			"Constraint 1 (same ISBN => same title)                  discovered",
			"Constraint 2 (same store name + ISBN => same price)     discovered",
			"Constraint 3 (same ISBN => same author SET)             discovered",
			"Constraint 4 (same author set + title => same ISBN)     discovered",
		}},
		{"dblp", []string{"entry keys are unique", "duplicate cluster"}},
		{"auction", []string{"inter-relation FDs at scale x2", "itemref"}},
		{"refine", []string{"suggested refinements", "applied:", "refined document:"}},
		{"anomaly", []string{"pinning them as invariants", "also requires updating", "invariant(s) are violated", "conflicting copies"}},
		{"streaming", []string{"identical results", "streamed"}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.dir, func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "./examples/"+c.dir)
			cmd.Dir = "."
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", c.dir, err, out)
			}
			for _, want := range c.want {
				if !strings.Contains(string(out), want) {
					t.Errorf("example %s output missing %q:\n%.1200s", c.dir, want, out)
				}
			}
		})
	}
}
