package discoverxfd_test

import (
	"strings"
	"testing"

	"discoverxfd"
)

func TestCheckConstraints(t *testing.T) {
	doc, err := discoverxfd.ParseDocument(libraryXML)
	if err != nil {
		t.Fatal(err)
	}
	h, err := discoverxfd.BuildHierarchy(doc, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := discoverxfd.ParseConstraints(`
{./isbn} -> ./title w.r.t. C(/library/shelf/book)
{./isbn} -> ./publisher w.r.t. C(/library/shelf/book)
{../room} -> ./publisher w.r.t. C(/library/shelf/book)
{./room} KEY of C(/library/shelf)
{./isbn} KEY of C(/library/shelf/book)
`)
	if err != nil {
		t.Fatal(err)
	}
	results, err := discoverxfd.CheckConstraints(h, cs)
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, true, false, true, false}
	for i, r := range results {
		if r.Holds != want[i] {
			t.Errorf("%s: holds=%v, want %v", r.Constraint, r.Holds, want[i])
		}
	}
	// The satisfied FD reports its witness; the violated one its g3.
	if results[0].Witnesses != 1 {
		t.Errorf("isbn->title witnesses = %d, want 1", results[0].Witnesses)
	}
	if results[2].G3Error <= 0 {
		t.Errorf("violated FD should carry a positive g3 error")
	}
	if !strings.Contains(results[2].String(), "VIOLATED") {
		t.Errorf("String: %q", results[2].String())
	}
}

func TestCheckConstraintsUnknownClass(t *testing.T) {
	doc, _ := discoverxfd.ParseDocument(libraryXML)
	h, err := discoverxfd.BuildHierarchy(doc, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := discoverxfd.ParseConstraints(`{./x} KEY of C(/library/nothere)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := discoverxfd.CheckConstraints(h, cs); err == nil {
		t.Fatal("unknown class must error")
	}
}

// TestDiscoveredConstraintsRecheck round-trips discovery output
// through the notation parser and the checker: everything Discover
// reports must re-verify from its printed form.
func TestDiscoveredConstraintsRecheck(t *testing.T) {
	doc, _ := discoverxfd.ParseDocument(libraryXML)
	h, err := discoverxfd.BuildHierarchy(doc, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	res, err := discoverxfd.DiscoverHierarchy(h, nil)
	if err != nil {
		t.Fatal(err)
	}
	var lines []string
	for _, fd := range res.FDs {
		lines = append(lines, fd.String())
	}
	for _, k := range res.Keys {
		lines = append(lines, k.String())
	}
	cs, err := discoverxfd.ParseConstraints(strings.Join(lines, "\n"))
	if err != nil {
		t.Fatalf("discovery output failed to re-parse: %v", err)
	}
	results, err := discoverxfd.CheckConstraints(h, cs)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if !r.Holds {
			t.Errorf("discovered constraint fails its own recheck: %s", r.Constraint)
		}
	}
}
