package discoverxfd

import (
	"discoverxfd/internal/anomaly"
)

// Update-anomaly detection (see internal/anomaly): locate where a
// document violates constraints it is supposed to satisfy, and name
// the disagreeing copies.
type (
	// Violation pairs a broken constraint with its conflicts.
	Violation = anomaly.Violation
	// Conflict is one group of tuples agreeing on an FD's LHS but
	// disagreeing on the RHS.
	Conflict = anomaly.Conflict
	// Occurrence is one RHS occurrence inside a conflict, naming the
	// pivot node and rendering its value.
	Occurrence = anomaly.Occurrence
)

// DetectAnomalies checks the constraints (typically the FDs and Keys
// discovered on a trusted earlier version of the document) against
// the hierarchy and reports each violation with the exact
// disagreeing nodes — the signature of an update that changed one
// copy of a redundantly stored value and missed its duplicates.
func DetectAnomalies(h *Hierarchy, constraints []Constraint) ([]Violation, error) {
	return anomaly.Detect(h, constraints)
}

// AdviseUpdate lists, for an intended update of fd's RHS under the
// pivot node with the given pre-order key, the companion nodes whose
// copies must change in the same transaction for the FD to keep
// holding.
func AdviseUpdate(h *Hierarchy, fd FD, pivotKey int) ([]Occurrence, error) {
	return anomaly.Advise(h, fd, pivotKey)
}
