package discoverxfd_test

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"testing"
	"time"

	"discoverxfd"
	"discoverxfd/internal/relation"
	"discoverxfd/internal/schema"
	"discoverxfd/internal/xmlgen"
)

// diffSeed returns the randomization seed for the incremental
// differential tests: XFD_DIFF_SEED pins it for reproduction, the
// default varies per run. The seed is logged by every test using it,
// so a CI failure always prints the script that produced it.
func diffSeed(t *testing.T) int64 {
	t.Helper()
	if env := os.Getenv("XFD_DIFF_SEED"); env != "" {
		seed, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("XFD_DIFF_SEED %q: %v", env, err)
		}
		return seed
	}
	return time.Now().UnixNano()
}

// scriptValue emits a value conforming to the attribute's declared
// simple type: ApplyUpdate validates writes the way cold builds
// validate documents, so Int/Float-typed leaves need parsable values.
func scriptValue(rng *rand.Rand, h *discoverxfd.Hierarchy, a relation.Attr) string {
	if h.Schema != nil {
		if el, err := h.Schema.Resolve(a.Path); err == nil && el.Payload != nil {
			switch el.Payload.Kind {
			case schema.Int:
				return strconv.Itoa(rng.Intn(500))
			case schema.Float:
				return fmt.Sprintf("%d.%d", rng.Intn(50), rng.Intn(10))
			}
		}
	}
	return fmt.Sprintf("upd-%d", rng.Intn(6))
}

// randomUpdateScript emits up to n valid random updates against the
// hierarchy's current state: leaf value changes, inserts with random
// subsets of leaf values, and deletes. A delete's cascade could
// remove tuples later ops address, so a delete ends the script — the
// caller applies scripts in successive batches instead.
func randomUpdateScript(rng *rand.Rand, h *discoverxfd.Hierarchy, n int) []discoverxfd.Update {
	var essential []*relation.Relation
	for _, r := range h.Relations {
		if r.Essential {
			essential = append(essential, r)
		}
	}
	if len(essential) == 0 {
		return nil
	}
	var ops []discoverxfd.Update
	used := make(map[int]bool)
	for tries := 0; len(ops) < n && tries < 8*n; tries++ {
		r := essential[rng.Intn(len(essential))]
		switch rng.Intn(4) {
		case 0, 1: // set — weighted: value changes dominate real workloads
			var leaves []relation.Attr
			for _, a := range r.Attrs {
				if a.Kind == relation.Leaf {
					leaves = append(leaves, a)
				}
			}
			if r.NRows() == 0 || len(leaves) == 0 {
				continue
			}
			key := r.Keys[rng.Intn(r.NRows())]
			if used[key] {
				continue
			}
			used[key] = true
			a := leaves[rng.Intn(len(leaves))]
			ops = append(ops, discoverxfd.Update{Op: discoverxfd.OpSet, Class: r.Pivot, Key: key,
				Attr: a.Rel, Value: scriptValue(rng, h, a)})
		case 2: // insert
			parent := 0
			if r.Parent.Essential {
				if r.Parent.NRows() == 0 {
					continue
				}
				parent = r.Parent.Keys[rng.Intn(r.Parent.NRows())]
				if used[parent] {
					continue
				}
			}
			vals := make(map[discoverxfd.RelPath]string)
			for _, a := range r.Attrs {
				if a.Kind == relation.Leaf && rng.Intn(2) == 0 {
					vals[a.Rel] = scriptValue(rng, h, a)
				}
			}
			ops = append(ops, discoverxfd.Update{Op: discoverxfd.OpInsert, Class: r.Pivot, Parent: parent, Values: vals})
		default: // delete ends the script
			if r.NRows() == 0 {
				continue
			}
			key := r.Keys[rng.Intn(r.NRows())]
			if used[key] {
				continue
			}
			ops = append(ops, discoverxfd.Update{Op: discoverxfd.OpDelete, Class: r.Pivot, Key: key})
			return ops
		}
	}
	return ops
}

// resultJSON renders a Result with the whole Stats block zeroed:
// incremental runs legitimately differ from cold runs in cache and
// lattice counters, while everything semantic — FDs, keys,
// redundancy witnesses — must be byte-identical.
func resultJSON(t *testing.T, res *discoverxfd.Result) []byte {
	t.Helper()
	c := *res
	c.Stats = discoverxfd.Stats{}
	var buf bytes.Buffer
	if err := discoverxfd.WriteJSON(&buf, &c); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestIncrementalDiffGolden is the incremental-discovery differential
// harness: over every golden corpus and option set, a randomized
// mutation script applied via Engine.ApplyUpdate followed by warm
// discovery must produce byte-identical Result JSON (Stats aside) to
// a cold engine discovering a fresh hierarchy built from the mutated
// document. CI runs this job under -race.
func TestIncrementalDiffGolden(t *testing.T) {
	seed := diffSeed(t)
	t.Logf("seed %d (reproduce with XFD_DIFF_SEED=%d)", seed, seed)
	for ci, c := range goldenCases() {
		t.Run(c.slug, func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed + int64(ci)))
			ctx := context.Background()
			eng := discoverxfd.NewEngine(c.opts)
			h, err := eng.BuildHierarchy(ctx, c.ds.Tree, c.ds.Schema)
			if err != nil {
				t.Fatalf("%s: build: %v", c.ds.Name, err)
			}
			if _, err := eng.DiscoverHierarchy(ctx, h); err != nil {
				t.Fatalf("%s: warm-up discover: %v", c.ds.Name, err)
			}
			for batch := 0; batch < 3; batch++ {
				ops := randomUpdateScript(rng, h, 5)
				if len(ops) == 0 {
					t.Logf("%s: batch %d: no applicable ops", c.slug, batch)
					continue
				}
				if _, err := eng.ApplyUpdate(h, ops); err != nil {
					// Schema rejections (e.g. a graft under a Choice
					// element) can happen on random scripts; the batch
					// stops but the hierarchy stays consistent and the
					// warm layer is dropped — still a differential worth
					// checking.
					t.Logf("%s: batch %d: apply rejected: %v", c.slug, batch, err)
				}
				warm, err := eng.DiscoverHierarchy(ctx, h)
				if err != nil {
					t.Fatalf("%s: batch %d: incremental discover: %v", c.slug, batch, err)
				}
				coldEng := discoverxfd.NewEngine(c.opts)
				coldH, err := coldEng.BuildHierarchy(ctx, c.ds.Tree, c.ds.Schema)
				if err != nil {
					t.Fatalf("%s: batch %d: cold build: %v", c.slug, batch, err)
				}
				cold, err := coldEng.DiscoverHierarchy(ctx, coldH)
				if err != nil {
					t.Fatalf("%s: batch %d: cold discover: %v", c.slug, batch, err)
				}
				if wj, cj := resultJSON(t, warm), resultJSON(t, cold); !bytes.Equal(wj, cj) {
					t.Fatalf("%s: batch %d: incremental result differs from cold (seed %d)\nscript: %v\n%s",
						c.slug, batch, seed, ops, diffHint(cj, wj))
				}
			}
		})
	}
}

// FuzzIncrementalDiscovery drives the same incremental-vs-cold
// property from fuzzed (seed, batchSize) inputs over the warehouse
// corpus: random updates followed by warm discovery must equal cold
// discovery over the mutated document.
func FuzzIncrementalDiscovery(f *testing.F) {
	f.Add(int64(1), uint8(3))
	f.Add(int64(42), uint8(8))
	f.Add(int64(-7), uint8(1))
	f.Fuzz(func(t *testing.T, seed int64, n uint8) {
		ds := warehouseDataset()
		ctx := context.Background()
		eng := discoverxfd.NewEngine(nil)
		h, err := eng.BuildHierarchy(ctx, ds.Tree, ds.Schema)
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		if _, err := eng.DiscoverHierarchy(ctx, h); err != nil {
			t.Fatalf("warm-up: %v", err)
		}
		rng := rand.New(rand.NewSource(seed))
		ops := randomUpdateScript(rng, h, 1+int(n%16))
		if len(ops) == 0 {
			return
		}
		if _, err := eng.ApplyUpdate(h, ops); err != nil {
			t.Logf("apply rejected: %v", err)
		}
		warm, err := eng.DiscoverHierarchy(ctx, h)
		if err != nil {
			t.Fatalf("incremental discover: %v", err)
		}
		coldEng := discoverxfd.NewEngine(nil)
		coldH, err := coldEng.BuildHierarchy(ctx, ds.Tree, ds.Schema)
		if err != nil {
			t.Fatalf("cold build: %v", err)
		}
		cold, err := coldEng.DiscoverHierarchy(ctx, coldH)
		if err != nil {
			t.Fatalf("cold discover: %v", err)
		}
		if wj, cj := resultJSON(t, warm), resultJSON(t, cold); !bytes.Equal(wj, cj) {
			t.Fatalf("incremental differs from cold (seed %d)\nscript: %v\n%s", seed, ops, diffHint(cj, wj))
		}
	})
}

// warehouseDataset returns a fresh warehouse corpus for the update
// tests (fresh per call: the tests mutate the tree).
func warehouseDataset() xmlgen.Dataset {
	return xmlgen.Warehouse(xmlgen.DefaultWarehouse())
}

// TestParseUpdates pins the JSON update-script codec.
func TestParseUpdates(t *testing.T) {
	script := `[
		{"op": "set", "class": "/warehouse/state/store/book", "key": 17, "attr": "./price", "value": "35"},
		{"op": "insert", "class": "/warehouse/state/store/book", "parent": 9, "values": {"./ISBN": "555"}},
		{"op": "insert", "class": "/warehouse/state"},
		{"op": "delete", "class": "/warehouse/state/store/book", "key": 17}
	]`
	ops, err := discoverxfd.ParseUpdates(strings.NewReader(script))
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 4 {
		t.Fatalf("parsed %d ops, want 4", len(ops))
	}
	if ops[0].Op != discoverxfd.OpSet || ops[0].Key != 17 || ops[0].Value != "35" {
		t.Fatalf("set decoded wrong: %+v", ops[0])
	}
	if ops[1].Op != discoverxfd.OpInsert || ops[1].Parent != 9 || ops[1].Values["./ISBN"] != "555" {
		t.Fatalf("insert decoded wrong: %+v", ops[1])
	}
	if ops[3].Op != discoverxfd.OpDelete || ops[3].Key != 17 {
		t.Fatalf("delete decoded wrong: %+v", ops[3])
	}

	for name, bad := range map[string]string{
		"unknown op":      `[{"op": "rename", "class": "/a/b", "key": 1}]`,
		"missing class":   `[{"op": "delete", "key": 1}]`,
		"set sans key":    `[{"op": "set", "class": "/a/b", "attr": "./x", "value": "1"}]`,
		"set sans attr":   `[{"op": "set", "class": "/a/b", "key": 1}]`,
		"delete sans key": `[{"op": "delete", "class": "/a/b"}]`,
		"unknown field":   `[{"op": "delete", "class": "/a/b", "key": 1, "bogus": true}]`,
		"not an array":    `{"op": "delete"}`,
	} {
		if _, err := discoverxfd.ParseUpdates(strings.NewReader(bad)); err == nil {
			t.Errorf("%s: parsed without error", name)
		}
	}
}

// TestApplyUpdateStreamedRejected pins ErrNotUpdatable for streamed
// hierarchies, which retain no encoding state.
func TestApplyUpdateStreamedRejected(t *testing.T) {
	ds := warehouseDataset()
	var xml bytes.Buffer
	if err := ds.Tree.WriteXML(&xml); err != nil {
		t.Fatal(err)
	}
	eng := discoverxfd.NewEngine(nil)
	h, err := eng.BuildHierarchyStream(context.Background(), &xml, ds.Schema)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.ApplyUpdate(h, []discoverxfd.Update{{Op: discoverxfd.OpDelete, Class: "/x", Key: 1}}); err != discoverxfd.ErrNotUpdatable {
		t.Fatalf("err = %v, want ErrNotUpdatable", err)
	}
}
