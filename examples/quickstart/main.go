// Quickstart: parse a small XML document, infer its schema, discover
// the functional dependencies and redundancies it contains, and print
// the report.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"discoverxfd"
)

const doc = `
<library>
  <shelf>
    <room>North</room>
    <book><isbn>1</isbn><title>Go</title><publisher>Addison</publisher></book>
    <book><isbn>2</isbn><title>XML</title><publisher>Wiley</publisher></book>
  </shelf>
  <shelf>
    <room>South</room>
    <book><isbn>1</isbn><title>Go</title><publisher>Addison</publisher></book>
    <book><isbn>3</isbn><title>SQL</title><publisher>Wiley</publisher></book>
  </shelf>
</library>`

func main() {
	// Parse the document into the paper's data-tree model.
	d, err := discoverxfd.ParseDocument(doc)
	if err != nil {
		log.Fatal(err)
	}

	// The schema is inferred: book repeats under shelf, so it becomes
	// a set element; isbn/title/publisher are leaf elements.
	s, err := discoverxfd.InferSchema(d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("inferred schema:")
	fmt.Println(s)

	// Discover all minimal interesting XML FDs, keys, and the
	// redundancies the FDs indicate. ISBN 1 is shelved twice, so
	// {./isbn} -> ./title (and -> ./publisher) witness redundant
	// storage.
	res, err := discoverxfd.Discover(d, s, nil)
	if err != nil {
		log.Fatal(err)
	}
	discoverxfd.WriteReport(os.Stdout, res)
}
