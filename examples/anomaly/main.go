// Anomaly: the update-anomaly workflow the paper's introduction warns
// about. Discover the constraints a trusted version of the data
// satisfies, simulate a careless single-copy update, then (a) get an
// update advisory listing the companion copies that should have
// changed too, and (b) detect the inconsistency after the fact.
//
//	go run ./examples/anomaly
package main

import (
	"fmt"
	"log"

	"discoverxfd"
)

const v1 = `
<warehouse>
  <state><name>WA</name>
    <store>
      <contact><name>Borders</name><address>Seattle</address></contact>
      <book><ISBN>0072465638</ISBN><author>Ramakrishnan</author><author>Gehrke</author>
            <title>DBMS</title><price>129.99</price></book>
    </store>
  </state>
  <state><name>KY</name>
    <store>
      <contact><name>Borders</name><address>Lexington</address></contact>
      <book><ISBN>0072465638</ISBN><author>Gehrke</author><author>Ramakrishnan</author>
            <title>DBMS</title><price>129.99</price></book>
      <book><ISBN>0596000278</ISBN><author>Harold</author><author>Means</author>
            <title>XML in a Nutshell</title><price>39.95</price></book>
    </store>
  </state>
</warehouse>`

const warehouseSchema = `
warehouse: Rcd
  state: SetOf Rcd
    name: str
    store: SetOf Rcd
      contact: Rcd
        name: str
        address: str
      book: SetOf Rcd
        ISBN: str
        author: SetOf str
        title: str
        price: str
`

func main() {
	doc, err := discoverxfd.ParseDocument(v1)
	if err != nil {
		log.Fatal(err)
	}
	// Pin the declared schema: inference cannot know book is a set
	// element when each store happens to hold a single book.
	s, err := discoverxfd.ParseSchema(warehouseSchema)
	if err != nil {
		log.Fatal(err)
	}
	h, err := discoverxfd.BuildHierarchy(doc, s, nil)
	if err != nil {
		log.Fatal(err)
	}
	res, err := discoverxfd.DiscoverHierarchy(h, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("v1 satisfies %d redundancy-indicating FDs; pinning them as invariants.\n", len(res.FDs))

	// An editor wants to retitle the Seattle copy of ISBN 0072465638.
	// Ask for the advisory first: which other copies must change too?
	book := discoverxfd.Path("/warehouse/state/store/book")
	fd, err := discoverxfd.ParseFD("{./ISBN} -> ./title w.r.t. C(" + string(book) + ")")
	if err != nil {
		log.Fatal(err)
	}
	target := doc.NodesAt(book)[0]
	companions, err := discoverxfd.AdviseUpdate(h, fd, target.Key)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nupdating ./title of book node %d also requires updating:\n", target.Key)
	for _, o := range companions {
		fmt.Printf("  node %d (%s): currently %q\n", o.PivotKey, o.PivotPath, o.Value)
	}

	// The editor ignores the advisory and updates only one copy.
	target.Child("title").Value = "Database Management Systems (3rd ed.)"
	doc.Renumber()

	// Re-check the pinned invariants on the updated document.
	var lines string
	for _, f := range res.FDs {
		lines += f.String() + "\n"
	}
	cs, err := discoverxfd.ParseConstraints(lines)
	if err != nil {
		log.Fatal(err)
	}
	h2, err := discoverxfd.BuildHierarchy(doc, s, nil)
	if err != nil {
		log.Fatal(err)
	}
	violations, err := discoverxfd.DetectAnomalies(h2, cs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter the careless update, %d invariant(s) are violated:\n\n", len(violations))
	for _, v := range violations {
		fmt.Println(v)
		fmt.Println()
	}
}
