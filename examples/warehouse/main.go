// Warehouse: the paper's running example (Figure 1). The document
// stores books sold at stores grouped by state; the example walks
// through the four constraints of Section 2.2 — including the
// set-element constraints (3 and 4) that earlier XML FD notions
// cannot express, and the multi-hierarchy constraint (2) that needs
// inter-relation discovery — and shows how each is found and
// checked.
//
//	go run ./examples/warehouse
package main

import (
	"fmt"
	"log"

	"discoverxfd"
)

const warehouseDoc = `
<warehouse>
  <state>
    <name>WA</name>
    <store>
      <contact><name>Borders</name><address>Seattle</address></contact>
      <book>
        <ISBN>0471771922</ISBN><author>Post</author>
        <title>Database Management Systems</title><price>74.99</price>
      </book>
      <book>
        <ISBN>0072465638</ISBN><author>Ramakrishnan</author><author>Gehrke</author>
        <title>DBMS</title><price>129.99</price>
      </book>
    </store>
  </state>
  <state>
    <name>KY</name>
    <store>
      <contact><name>Borders</name><address>Lexington</address></contact>
      <book>
        <ISBN>0072465638</ISBN><author>Gehrke</author><author>Ramakrishnan</author>
        <title>DBMS</title><price>129.99</price>
      </book>
      <book>
        <ISBN>0321197844</ISBN><author>Date</author>
        <title>DBMS</title><price>89.00</price>
      </book>
    </store>
    <store>
      <contact><name>WHSmith</name><address>Lexington</address></contact>
      <book>
        <ISBN>0072465638</ISBN><author>Ramakrishnan</author><author>Gehrke</author>
        <title>DBMS</title>
      </book>
      <book>
        <ISBN>0596000278</ISBN><author>Date</author>
        <title>XML in a Nutshell</title><price>39.95</price>
      </book>
    </store>
  </state>
</warehouse>`

func main() {
	doc, err := discoverxfd.ParseDocument(warehouseDoc)
	if err != nil {
		log.Fatal(err)
	}
	res, err := discoverxfd.Discover(doc, nil, nil)
	if err != nil {
		log.Fatal(err)
	}

	book := discoverxfd.Path("/warehouse/state/store/book")
	fmt.Println("The paper's four constraints, as discovered:")
	paperFDs := []struct {
		label string
		lhs   []discoverxfd.RelPath
		rhs   discoverxfd.RelPath
	}{
		{"Constraint 1 (same ISBN => same title)", []discoverxfd.RelPath{"./ISBN"}, "./title"},
		{"Constraint 2 (same store name + ISBN => same price)", []discoverxfd.RelPath{"../contact/name", "./ISBN"}, "./price"},
		{"Constraint 3 (same ISBN => same author SET)", []discoverxfd.RelPath{"./ISBN"}, "./author"},
		{"Constraint 4 (same author set + title => same ISBN)", []discoverxfd.RelPath{"./author", "./title"}, "./ISBN"},
	}
	for _, c := range paperFDs {
		found := false
		for _, fd := range res.FDs {
			if fd.Class == book && fd.RHS == c.rhs && sameLHS(fd.LHS, c.lhs) {
				found = true
				break
			}
		}
		status := "NOT FOUND"
		if found {
			status = "discovered"
		}
		fmt.Printf("  %-55s %s\n", c.label, status)
	}

	// Constraint 2 illustrates strong satisfaction of missing
	// elements: the WHSmith copy of ISBN 0072465638 has no price, yet
	// the constraint holds because no other WHSmith book shares that
	// ISBN. The plain intra-relation {./ISBN} -> ./price is violated.
	h, err := discoverxfd.BuildHierarchy(doc, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	ev, err := discoverxfd.Evaluate(h, book, []discoverxfd.RelPath{"./ISBN"}, "./price")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n{./ISBN} -> ./price alone: holds=%v (violations=%d) — the missing\n", ev.Holds, ev.Violations)
	fmt.Println("price breaks it; only the inter-relation form with ../contact/name holds.")

	// Quantify the redundancy each FD witnesses (Definition 11).
	fmt.Println("\nRedundancy witnesses per discovered FD:")
	for _, r := range res.Redundancies {
		if r.FD.Class == book {
			fmt.Printf("  %-60s %d value(s)\n", fmt.Sprintf("{%s} -> %s", join(r.FD.LHS), r.FD.RHS), r.RedundantValues)
		}
	}
}

func sameLHS(a, b []discoverxfd.RelPath) bool {
	if len(a) != len(b) {
		return false
	}
	m := map[discoverxfd.RelPath]bool{}
	for _, p := range a {
		m[p] = true
	}
	for _, p := range b {
		if !m[p] {
			return false
		}
	}
	return true
}

func join(ps []discoverxfd.RelPath) string {
	s := ""
	for i, p := range ps {
		if i > 0 {
			s += ", "
		}
		s += string(p)
	}
	return s
}
