// Refine: the schema-refinement workflow the paper's introduction
// motivates — discover redundancies in a casually designed document,
// rank the repairs, apply the best one, and verify by re-running
// discovery that the redundancy is gone.
//
//	go run ./examples/refine
package main

import (
	"fmt"
	"log"

	"discoverxfd"
)

// A casually designed product feed: supplier info is repeated on
// every offer of a supplier, and product names on every offer of a
// product.
const feed = `
<feed>
  <offer><product>P1</product><pname>Espresso Machine</pname>
         <supplier>S1</supplier><scity>Turin</scity><price>120</price></offer>
  <offer><product>P1</product><pname>Espresso Machine</pname>
         <supplier>S2</supplier><scity>Lyon</scity><price>115</price></offer>
  <offer><product>P2</product><pname>Grinder</pname>
         <supplier>S1</supplier><scity>Turin</scity><price>45</price></offer>
  <offer><product>P3</product><pname>Kettle</pname>
         <supplier>S2</supplier><scity>Lyon</scity><price>30</price></offer>
  <offer><product>P2</product><pname>Grinder</pname>
         <supplier>S3</supplier><scity>Porto</scity><price>49</price></offer>
  <offer><product>P3</product><pname>Kettle</pname>
         <supplier>S1</supplier><scity>Turin</scity><price>28</price></offer>
</feed>`

func main() {
	doc, err := discoverxfd.ParseDocument(feed)
	if err != nil {
		log.Fatal(err)
	}
	h, err := discoverxfd.BuildHierarchy(doc, nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	res, err := discoverxfd.DiscoverHierarchy(h, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("suggested refinements (best first):")
	sugs := discoverxfd.SuggestRefinements(h, res)
	for _, s := range sugs {
		fmt.Printf("  %s\n", s)
	}
	if len(sugs) == 0 {
		fmt.Println("  none — the document is already redundancy-free")
		return
	}

	// Apply every applicable repair in sequence, rebuilding the
	// hierarchy after each (the document and schema change).
	applied := 0
	for {
		h, err = discoverxfd.BuildHierarchy(doc, nil, nil)
		if err != nil {
			log.Fatal(err)
		}
		res, err = discoverxfd.DiscoverHierarchy(h, nil)
		if err != nil {
			log.Fatal(err)
		}
		sugs = discoverxfd.SuggestRefinements(h, res)
		var next *discoverxfd.Suggestion
		for i := range sugs {
			if sugs[i].Applicable {
				next = &sugs[i]
				break
			}
		}
		if next == nil {
			break
		}
		removed, err := discoverxfd.ApplyRefinement(doc, h, next.FD)
		if err != nil {
			log.Fatal(err)
		}
		applied++
		fmt.Printf("\napplied: %s\n  removed %d redundant node(s)\n", next, removed)
	}

	fmt.Printf("\nafter %d repair(s), remaining redundancy-indicating FDs over leaf data:\n", applied)
	for _, r := range res.Redundancies {
		fmt.Printf("  %s\n", r)
	}
	fmt.Println("\nrefined document:")
	fmt.Println(doc.XMLString())
}
