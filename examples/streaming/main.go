// Streaming: discover redundancies in a document far larger than you
// want to hold in memory. The streaming builder consumes one
// root-child subtree at a time, so resident memory tracks the
// hierarchical representation (columns of integer codes) rather than
// the XML tree; discovery output is identical to the in-memory path.
//
//	go run ./examples/streaming
package main

import (
	"fmt"
	"io"
	"log"
	"runtime"
	"time"

	"discoverxfd"
	"discoverxfd/internal/xmlgen"
)

func main() {
	// A larger auction document, serialized once so both paths read
	// identical bytes.
	ds := xmlgen.Auction(xmlgen.AuctionParams{Factor: 16, Seed: 4})
	xml := ds.Tree.XMLString()
	fmt.Printf("document: %.1f MB, %d nodes\n\n", float64(len(xml))/1e6, ds.Tree.Size())

	type outcome struct {
		fds, keys int
		dur       time.Duration
		heapMB    float64
	}
	run := func(name string, f func() (*discoverxfd.Result, error)) outcome {
		runtime.GC()
		var before runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		res, err := f()
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		dur := time.Since(start)
		var after runtime.MemStats
		runtime.ReadMemStats(&after)
		return outcome{
			fds: len(res.FDs), keys: len(res.Keys), dur: dur,
			heapMB: float64(after.TotalAlloc-before.TotalAlloc) / 1e6,
		}
	}

	mem := run("in-memory", func() (*discoverxfd.Result, error) {
		doc, err := discoverxfd.ParseDocument(xml)
		if err != nil {
			return nil, err
		}
		return discoverxfd.Discover(doc, ds.Schema, nil)
	})
	str := run("streamed", func() (*discoverxfd.Result, error) {
		return discoverxfd.DiscoverStream(newSlowReader(xml), ds.Schema, nil)
	})

	fmt.Printf("%-10s %6s %6s %10s %12s\n", "mode", "FDs", "keys", "time", "allocated")
	fmt.Printf("%-10s %6d %6d %10s %9.1f MB\n", "in-memory", mem.fds, mem.keys, mem.dur.Round(time.Millisecond), mem.heapMB)
	fmt.Printf("%-10s %6d %6d %10s %9.1f MB\n", "streamed", str.fds, str.keys, str.dur.Round(time.Millisecond), str.heapMB)
	if mem.fds != str.fds || mem.keys != str.keys {
		log.Fatal("streamed and in-memory discovery disagree!")
	}
	fmt.Println("\nidentical results; the streamed path never held the whole tree.")
}

// newSlowReader returns the document as an io.Reader in small chunks,
// the way a network or file stream would arrive.
func newSlowReader(s string) io.Reader { return &chunkReader{s: s, chunk: 64 << 10} }

type chunkReader struct {
	s     string
	pos   int
	chunk int
}

func (c *chunkReader) Read(p []byte) (int, error) {
	if c.pos >= len(c.s) {
		return 0, io.EOF
	}
	n := len(p)
	if n > c.chunk {
		n = c.chunk
	}
	if c.pos+n > len(c.s) {
		n = len(c.s) - c.pos
	}
	copy(p, c.s[c.pos:c.pos+n])
	c.pos += n
	return n, nil
}
