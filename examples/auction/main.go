// Auction: scalability on an XMark-style benchmark document, using
// the public API the way a capacity-planning user would — sweep the
// scale factor and watch discovery stay near-linear in the number of
// tuples (the paper's headline claim), then drill into one discovered
// inter-relation constraint.
//
//	go run ./examples/auction
package main

import (
	"fmt"
	"log"
	"time"

	"discoverxfd"
	"discoverxfd/internal/xmlgen"
)

func main() {
	fmt.Println("scale   nodes   tuples   FDs   keys   time      µs/tuple")
	for _, factor := range []int{1, 2, 4, 8} {
		ds := xmlgen.Auction(xmlgen.AuctionParams{Factor: factor, Seed: 4})
		h, err := discoverxfd.BuildHierarchy(ds.Tree, ds.Schema, nil)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		res, err := discoverxfd.DiscoverHierarchy(h, nil)
		if err != nil {
			log.Fatal(err)
		}
		dur := time.Since(start)
		fmt.Printf("x%-6d %-7d %-8d %-5d %-6d %-9s %.1f\n",
			factor, ds.Tree.Size(), h.TotalTuples(), len(res.FDs), len(res.Keys),
			dur.Round(10*time.Microsecond), float64(dur.Microseconds())/float64(h.TotalTuples()))
	}

	// Drill into one run: the bid-level inter-relation constraint
	// {../itemref, ./personref} -> ./increase spans two hierarchy
	// levels — a person's standing increase on an item is fixed
	// across that item's auctions.
	ds := xmlgen.Auction(xmlgen.AuctionParams{Factor: 2, Seed: 4})
	res, err := discoverxfd.Discover(ds.Tree, ds.Schema, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ninter-relation FDs at scale x2:")
	for _, fd := range res.FDs {
		if fd.Inter {
			fmt.Printf("  %s\n", fd)
		}
	}
}
