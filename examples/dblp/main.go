// DBLP: duplicate-entry detection in a bibliography. A key the data
// *fails* to satisfy while the corresponding FD holds is exactly a
// redundancy (Definition 11); here, duplicated paper entries make
// {./author, ./title} determine ./year without identifying articles,
// and the witness groups are the duplicate clusters a curator would
// merge.
//
//	go run ./examples/dblp
package main

import (
	"fmt"
	"log"
	"sort"

	"discoverxfd"
	"discoverxfd/internal/xmlgen"
)

func main() {
	// Generate a deterministic DBLP-style bibliography whose paper
	// pool is sampled with replacement — the classic duplicated-entry
	// pathology of casually curated bibliographies.
	ds := xmlgen.DBLP(xmlgen.DBLPParams{Venues: 5, ArticlesPerVenue: 30, PaperPool: 60, Seed: 11})
	doc := ds.Tree

	res, err := discoverxfd.Discover(doc, ds.Schema, nil)
	if err != nil {
		log.Fatal(err)
	}

	article := discoverxfd.Path("/dblp/venue/article")

	// 1. The entry key is a real key.
	for _, k := range res.Keys {
		if k.Class == article && len(k.LHS) == 1 && k.LHS[0] == "./key" {
			fmt.Println("entry keys are unique: {./key} is an XML Key of C_article")
		}
	}

	// 2. {./author, ./title} determines ./year but is NOT a key: the
	// witness groups are duplicate entries.
	h, err := discoverxfd.BuildHierarchy(doc, ds.Schema, nil)
	if err != nil {
		log.Fatal(err)
	}
	lhs := []discoverxfd.RelPath{"./author", "./title"}
	ev, err := discoverxfd.Evaluate(h, article, lhs, "./year")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n{./author, ./title} -> ./year holds=%v, LHS is key=%v\n", ev.Holds, ev.LHSIsKey)
	fmt.Printf("=> %d duplicate cluster(s) storing %d redundant year value(s)\n",
		ev.WitnessGroups, ev.Witnesses)

	// 3. List the largest duplicate clusters by grouping articles on
	// (author set, title) directly from the tree.
	type cluster struct {
		title string
		keys  []string
	}
	groups := map[string]*cluster{}
	for _, v := range doc.Root.ChildrenLabeled("venue") {
		for _, a := range v.ChildrenLabeled("article") {
			var authors []string
			for _, au := range a.ChildrenLabeled("author") {
				authors = append(authors, au.Value)
			}
			sort.Strings(authors)
			title := a.Child("title").Value
			sig := fmt.Sprintf("%v|%s", authors, title)
			if groups[sig] == nil {
				groups[sig] = &cluster{title: title}
			}
			groups[sig].keys = append(groups[sig].keys, a.Child("key").Value)
		}
	}
	var dups []*cluster
	for _, c := range groups {
		if len(c.keys) > 1 {
			dups = append(dups, c)
		}
	}
	sort.Slice(dups, func(i, j int) bool { return len(dups[i].keys) > len(dups[j].keys) })
	fmt.Printf("\ntop duplicate clusters (%d total):\n", len(dups))
	for i, c := range dups {
		if i == 5 {
			break
		}
		fmt.Printf("  %q x%d: %v\n", c.title, len(c.keys), c.keys)
	}

	// 4. The inter-relation FD: within a venue, year determines
	// volume.
	for _, fd := range res.FDs {
		if fd.Class == article && fd.RHS == "./volume" && fd.Inter {
			fmt.Printf("\ninter-relation FD discovered: %s\n", fd)
		}
	}
}
