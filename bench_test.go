// Benchmarks regenerating every table and figure of the paper's
// evaluation (reconstructed as experiments E1–E11; see DESIGN.md and
// EXPERIMENTS.md). Each benchmark measures the discovery work of one
// experiment's configurations; `go run ./cmd/xfdbench` prints the
// full tables with derived columns.
package discoverxfd_test

import (
	"fmt"
	"strings"
	"testing"

	"discoverxfd"

	"discoverxfd/internal/core"
	"discoverxfd/internal/depminer"
	"discoverxfd/internal/flat"
	"discoverxfd/internal/fun"
	"discoverxfd/internal/notions"
	"discoverxfd/internal/relation"
	"discoverxfd/internal/schema"
	"discoverxfd/internal/xmlgen"
)

func mustHierarchy(b *testing.B, ds xmlgen.Dataset, opts relation.Options) *relation.Hierarchy {
	b.Helper()
	h, err := relation.Build(ds.Tree, ds.Schema, opts)
	if err != nil {
		b.Fatal(err)
	}
	return h
}

func runDiscover(b *testing.B, h *relation.Hierarchy, opts core.Options) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Discover(h, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE1Datasets — Table 1: full DiscoverXFD on each dataset at
// its default size.
func BenchmarkE1Datasets(b *testing.B) {
	sets := []xmlgen.Dataset{
		xmlgen.Warehouse(xmlgen.DefaultWarehouse()),
		xmlgen.DBLP(xmlgen.DefaultDBLP()),
		xmlgen.PSD(xmlgen.DefaultPSD()),
		xmlgen.Auction(xmlgen.DefaultAuction()),
	}
	for _, ds := range sets {
		ds := ds
		b.Run(ds.Name, func(b *testing.B) {
			h := mustHierarchy(b, ds, relation.Options{})
			runDiscover(b, h, core.Options{PropagatePartial: true})
		})
	}
}

// BenchmarkE2Scalability — time-vs-size figure: DiscoverXFD on the
// auction benchmark across scale factors. Near-linear ns/op growth
// down the series is the reproduction target.
func BenchmarkE2Scalability(b *testing.B) {
	for _, factor := range []int{1, 2, 4, 8} {
		factor := factor
		b.Run(fmt.Sprintf("auction/x%d", factor), func(b *testing.B) {
			ds := xmlgen.Auction(xmlgen.AuctionParams{Factor: factor, Seed: 4})
			h := mustHierarchy(b, ds, relation.Options{})
			b.ReportMetric(float64(h.TotalTuples()), "tuples")
			runDiscover(b, h, core.Options{PropagatePartial: true})
		})
	}
	for _, scale := range []int{1, 2, 4, 8} {
		scale := scale
		b.Run(fmt.Sprintf("psd/x%d", scale), func(b *testing.B) {
			p := xmlgen.DefaultPSD()
			p.Entries *= scale
			p.ProteinPool *= scale
			ds := xmlgen.PSD(p)
			h := mustHierarchy(b, ds, relation.Options{})
			b.ReportMetric(float64(h.TotalTuples()), "tuples")
			runDiscover(b, h, core.Options{PropagatePartial: true})
		})
	}
}

// BenchmarkE3FlatVsHier — hierarchical-vs-flat figure: DiscoverXFD on
// the hierarchical representation against TANE on the flat one, as
// the number of unrelated set elements grows.
func BenchmarkE3FlatVsHier(b *testing.B) {
	for k := 1; k <= 4; k++ {
		k := k
		ds := xmlgen.PSD(xmlgen.PSDParams{Entries: 40, ProteinPool: 20, UnrelatedSets: k, MembersPerSet: 3, Seed: 3})
		b.Run(fmt.Sprintf("hier/sets=%d", k), func(b *testing.B) {
			h := mustHierarchy(b, ds, relation.Options{})
			runDiscover(b, h, core.Options{PropagatePartial: true})
		})
		b.Run(fmt.Sprintf("flat/sets=%d", k), func(b *testing.B) {
			tbl, err := flat.Build(ds.Tree, ds.Schema, 1<<20)
			if err != nil {
				b.Skipf("flat representation too large: %v", err)
			}
			b.ReportMetric(float64(tbl.NRows), "flat-tuples")
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := tbl.Discover(core.Options{MaxLHS: 3}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE4SchemaWidth — schema-width figure: DiscoverFD on a
// single relation as the attribute count grows; cost is exponential
// in width.
func BenchmarkE4SchemaWidth(b *testing.B) {
	for _, w := range []int{4, 6, 8, 10, 12} {
		w := w
		b.Run(fmt.Sprintf("attrs=%d", w), func(b *testing.B) {
			ds := xmlgen.Wide(xmlgen.DefaultWide(w))
			h := mustHierarchy(b, ds, relation.Options{})
			rels := h.EssentialRelations()
			rel := rels[len(rels)-1]
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := core.DiscoverRelation(rel, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE5IntraInter — cost-split table: intra-relation-only
// discovery against full DiscoverXFD on the same document.
func BenchmarkE5IntraInter(b *testing.B) {
	ds := xmlgen.DBLP(xmlgen.DefaultDBLP())
	h := mustHierarchy(b, ds, relation.Options{})
	b.Run("intra-only", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.DiscoverIntra(h, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("full-xfd", func(b *testing.B) {
		runDiscover(b, h, core.Options{PropagatePartial: true})
	})
}

// BenchmarkE6Pruning — pruning-ablation table: DiscoverXFD with the
// paper's pruning rules individually disabled (LHS capped so the
// unpruned lattice stays finite).
func BenchmarkE6Pruning(b *testing.B) {
	ds := xmlgen.PSD(xmlgen.DefaultPSD())
	h := mustHierarchy(b, ds, relation.Options{})
	variants := []struct {
		name string
		opts core.Options
	}{
		{"all-pruning", core.Options{PropagatePartial: true, MaxLHS: 4}},
		{"no-key-pruning", core.Options{PropagatePartial: true, MaxLHS: 4, DisableKeyPruning: true}},
		{"no-fd-pruning", core.Options{PropagatePartial: true, MaxLHS: 4, DisableFDPruning: true}},
		{"no-pruning", core.Options{PropagatePartial: true, MaxLHS: 4, DisableKeyPruning: true, DisableFDPruning: true}},
	}
	for _, v := range variants {
		v := v
		b.Run(v.name, func(b *testing.B) {
			runDiscover(b, h, v.opts)
		})
	}
}

// BenchmarkE7SetVsList — Section 4.5 order remark: building and
// discovering under unordered-set versus ordered-list semantics for
// set elements.
func BenchmarkE7SetVsList(b *testing.B) {
	ds := xmlgen.DBLP(xmlgen.DefaultDBLP())
	for _, ordered := range []bool{false, true} {
		ordered := ordered
		name := "set"
		if ordered {
			name = "list"
		}
		b.Run(name, func(b *testing.B) {
			h := mustHierarchy(b, ds, relation.Options{OrderedSets: ordered})
			runDiscover(b, h, core.Options{PropagatePartial: true})
		})
	}
}

// BenchmarkE8Approx — approximate-FD extension: discovery with a g3
// budget over a noisy relation.
func BenchmarkE8Approx(b *testing.B) {
	p := xmlgen.DefaultWide(8)
	p.NoisePermille = 10
	ds := xmlgen.Wide(p)
	h := mustHierarchy(b, ds, relation.Options{})
	runDiscover(b, h, core.Options{PropagatePartial: true, ApproxError: 0.02})
}

// BenchmarkE10Notions — Section 2.3 evaluators on the warehouse
// constraints (path-based is quadratic in RHS nodes; tree-tuple pays
// the unnesting).
func BenchmarkE10Notions(b *testing.B) {
	ds := xmlgen.Warehouse(xmlgen.DefaultWarehouse())
	fd := notions.PathFD{
		LHS: []schema.Path{"/warehouse/state/store/book/ISBN"},
		RHS: "/warehouse/state/store/book/author",
	}
	b.Run("path-based", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := notions.PathBasedHolds(ds.Tree, fd); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("tree-tuple", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := notions.TreeTupleHolds(ds.Tree, ds.Schema, fd, 1<<21); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkE11Baselines — the three relational discoverers on one
// identical relation.
func BenchmarkE11Baselines(b *testing.B) {
	p := xmlgen.DefaultWide(7)
	p.Rows = 800
	ds := xmlgen.Wide(p)
	h := mustHierarchy(b, ds, relation.Options{})
	rels := h.EssentialRelations()
	rel := rels[len(rels)-1]
	b.Run("tane-lattice", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, _, err := core.DiscoverRelation(rel, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("depminer", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := depminer.Discover(rel); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fun", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := fun.Discover(rel); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkStreamVsMemory — the streaming builder against the
// in-memory path on a serialized document; allocs/op shows the
// memory gap.
func BenchmarkStreamVsMemory(b *testing.B) {
	ds := xmlgen.Auction(xmlgen.AuctionParams{Factor: 4, Seed: 4})
	xml := ds.Tree.XMLString()
	b.Run("in-memory", func(b *testing.B) {
		b.SetBytes(int64(len(xml)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			doc, err := discoverxfd.ParseDocument(xml)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := discoverxfd.Discover(doc, ds.Schema, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("streamed", func(b *testing.B) {
		b.SetBytes(int64(len(xml)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := discoverxfd.DiscoverStream(strings.NewReader(xml), ds.Schema, nil); err != nil {
				b.Fatal(err)
			}
		}
	})
}
