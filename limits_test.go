package discoverxfd_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"discoverxfd"
	"discoverxfd/internal/faultinject"
)

// bigLibraryXML renders a library with n shelves so faults and budgets
// have room to land mid-document.
func bigLibraryXML(n int) string {
	var b strings.Builder
	b.WriteString("<library>\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "<shelf><room>r%d</room>", i%10)
		fmt.Fprintf(&b, "<book><isbn>i%d</isbn><title>t%d</title><publisher>p%d</publisher></book>", i, i%20, i%5)
		fmt.Fprintf(&b, "<book><isbn>j%d</isbn><title>u%d</title><publisher>q%d</publisher></book>", i, i%20, i%5)
		b.WriteString("</shelf>\n")
	}
	b.WriteString("</library>")
	return b.String()
}

// reportBody strips the run-statistics footer (whose timings vary run
// to run) so reports can be compared for the constraints they carry.
func reportBody(res *discoverxfd.Result) string {
	s := discoverxfd.ReportString(res)
	if i := strings.Index(s, "\nRun:"); i >= 0 {
		return s[:i]
	}
	return s
}

func librarySchema(t *testing.T, xml string) *discoverxfd.Schema {
	t.Helper()
	doc, err := discoverxfd.ParseDocument(xml)
	if err != nil {
		t.Fatal(err)
	}
	s, err := discoverxfd.InferSchema(doc)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestDiscoverStreamReaderFault injects an I/O error mid-document:
// DiscoverStream must return the wrapped error, leak no goroutines,
// and leave no stale state — a clean rerun is identical to a run that
// never saw the fault.
func TestDiscoverStreamReaderFault(t *testing.T) {
	defer faultinject.CheckGoroutines(t)()
	xml := bigLibraryXML(40)
	s := librarySchema(t, xml)

	clean, err := discoverxfd.DiscoverStream(strings.NewReader(xml), s, nil)
	if err != nil {
		t.Fatal(err)
	}

	faulty := &faultinject.Reader{R: strings.NewReader(xml), FailAfter: int64(len(xml) / 2)}
	res, err := discoverxfd.DiscoverStream(faulty, s, nil)
	if err == nil {
		t.Fatal("mid-document read error was swallowed")
	}
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want the injected error preserved through wrapping", err)
	}
	if res != nil {
		t.Fatal("failed stream returned a Result alongside the error")
	}

	rerun, err := discoverxfd.DiscoverStream(strings.NewReader(xml), s, nil)
	if err != nil {
		t.Fatalf("rerun after fault: %v", err)
	}
	if got, want := reportBody(rerun), reportBody(clean); got != want {
		t.Errorf("rerun after a faulted run differs from a clean run\nclean:\n%s\nrerun:\n%s", want, got)
	}
}

// TestDiscoverStreamStalledReaderCancellable checks that a hung
// upstream does not hang discovery: cancelling the context unblocks
// the stalled read and surfaces context.Canceled.
func TestDiscoverStreamStalledReaderCancellable(t *testing.T) {
	defer faultinject.CheckGoroutines(t)()
	xml := bigLibraryXML(40)
	s := librarySchema(t, xml)

	ctx, cancel := context.WithCancel(context.Background())
	stalled := &faultinject.StallReader{R: strings.NewReader(xml), StallAfter: int64(len(xml) / 2), Ctx: ctx}
	done := make(chan error, 1)
	go func() {
		_, err := discoverxfd.DiscoverStreamContext(ctx, stalled, s, nil)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("discovery hung on a stalled reader after cancellation")
	}
}

// TestDiscoverStreamCancelMidDocument cancels the context partway
// through ingestion (rather than before it) and expects an error, not
// a truncated result: cancellation is never graceful degradation.
func TestDiscoverStreamCancelMidDocument(t *testing.T) {
	xml := bigLibraryXML(40)
	s := librarySchema(t, xml)
	r, ctx := faultinject.CancelAfterBytes(context.Background(), strings.NewReader(xml), int64(len(xml)/2))
	res, err := discoverxfd.DiscoverStreamContext(ctx, r, s, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatal("cancelled stream returned a Result")
	}
}

// TestDiscoverDeadlineTruncatesPublicAPI drives the whole-call
// deadline budget through the public Options.Limits: an immediate
// deadline yields a partial Result, not an error.
func TestDiscoverDeadlineTruncatesPublicAPI(t *testing.T) {
	xml := bigLibraryXML(40)
	doc, err := discoverxfd.ParseDocument(xml)
	if err != nil {
		t.Fatal(err)
	}
	res, err := discoverxfd.Discover(doc, nil, &discoverxfd.Options{
		Limits: discoverxfd.Limits{Deadline: time.Nanosecond},
	})
	if err != nil {
		t.Fatalf("deadline must degrade gracefully, got error: %v", err)
	}
	if !res.Stats.Truncated {
		t.Fatal("immediate deadline did not mark the result truncated")
	}
	if res.Stats.TruncatedReason == "" {
		t.Error("Truncated set but TruncatedReason empty")
	}
	// The truncation must be visible in both renderings.
	if rep := discoverxfd.ReportString(res); !strings.Contains(rep, "PARTIAL RESULT") {
		t.Errorf("report does not flag the partial result:\n%s", rep)
	}
	var json strings.Builder
	if err := discoverxfd.WriteJSON(&json, res); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(json.String(), `"truncated": true`) {
		t.Errorf("JSON does not flag the partial result:\n%s", json.String())
	}
}

// TestDiscoverMaxTuplesTruncatesPublicAPI drives the tuple budget
// through the public API, for both the in-memory and streaming paths.
func TestDiscoverMaxTuplesTruncatesPublicAPI(t *testing.T) {
	xml := bigLibraryXML(40)
	s := librarySchema(t, xml)
	opts := &discoverxfd.Options{Limits: discoverxfd.Limits{MaxTuples: 30}}

	doc, err := discoverxfd.ParseDocument(xml)
	if err != nil {
		t.Fatal(err)
	}
	res, err := discoverxfd.Discover(doc, s, opts)
	if err != nil {
		t.Fatalf("tuple budget must degrade gracefully, got error: %v", err)
	}
	if !res.Stats.Truncated || !strings.Contains(res.Stats.TruncatedReason, "tuple budget") {
		t.Fatalf("Truncated=%v reason=%q", res.Stats.Truncated, res.Stats.TruncatedReason)
	}

	sres, err := discoverxfd.DiscoverStream(strings.NewReader(xml), s, opts)
	if err != nil {
		t.Fatalf("streamed tuple budget must degrade gracefully, got error: %v", err)
	}
	if !sres.Stats.Truncated || !strings.Contains(sres.Stats.TruncatedReason, "tuple budget") {
		t.Fatalf("stream Truncated=%v reason=%q", sres.Stats.Truncated, sres.Stats.TruncatedReason)
	}
}

// TestLoadDocumentContextParseLimits checks that parse limits are hard
// errors (not truncation) at the public boundary.
func TestLoadDocumentContextParseLimits(t *testing.T) {
	deep := strings.Repeat("<a>", 50) + strings.Repeat("</a>", 50)
	_, err := discoverxfd.LoadDocumentContext(context.Background(), strings.NewReader(deep),
		&discoverxfd.Options{Limits: discoverxfd.Limits{MaxDepth: 10}})
	if err == nil || !strings.Contains(err.Error(), "datatree:") {
		t.Fatalf("err = %v, want a datatree depth error", err)
	}
	_, err = discoverxfd.LoadDocumentContext(context.Background(), strings.NewReader(bigLibraryXML(40)),
		&discoverxfd.Options{Limits: discoverxfd.Limits{MaxNodes: 20}})
	if err == nil || !strings.Contains(err.Error(), "datatree:") {
		t.Fatalf("err = %v, want a datatree node-count error", err)
	}
}

// TestGenerousLimitsMatchPlainRun checks the public no-fault contract:
// a run under generous limits and a live context reports exactly what
// the plain run reports.
func TestGenerousLimitsMatchPlainRun(t *testing.T) {
	xml := bigLibraryXML(20)
	s := librarySchema(t, xml)
	doc, err := discoverxfd.ParseDocument(xml)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := discoverxfd.Discover(doc, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	governed, err := discoverxfd.DiscoverContext(ctx, doc, s, &discoverxfd.Options{
		Limits: discoverxfd.Limits{
			MaxDepth:  1 << 20,
			MaxNodes:  1 << 30,
			MaxTuples: 1 << 30,
			Deadline:  time.Hour,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if governed.Stats.Truncated {
		t.Fatal("generous limits marked the result truncated")
	}
	if got, want := reportBody(governed), reportBody(plain); got != want {
		t.Errorf("governed run differs from plain run\nplain:\n%s\ngoverned:\n%s", want, got)
	}
}
