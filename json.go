package discoverxfd

import (
	"encoding/json"
	"io"
)

// jsonFD is the wire form of an FD.
type jsonFD struct {
	Class       string   `json:"class"`
	LHS         []string `json:"lhs"`
	RHS         string   `json:"rhs"`
	Inter       bool     `json:"interRelation,omitempty"`
	Approximate bool     `json:"approximate,omitempty"`
	G3Error     float64  `json:"g3Error,omitempty"`
	// Redundancy witnesses (exact FDs only).
	RedundantValues int `json:"redundantValues"`
	WitnessGroups   int `json:"witnessGroups"`
}

type jsonKey struct {
	Class string   `json:"class"`
	LHS   []string `json:"lhs"`
	Inter bool     `json:"interRelation,omitempty"`
}

type jsonResult struct {
	FDs       []jsonFD  `json:"fds"`
	Keys      []jsonKey `json:"keys"`
	ApproxFDs []jsonFD  `json:"approxFDs,omitempty"`
	Stats     struct {
		Relations          int    `json:"relations"`
		RelationsReused    int    `json:"relationsReused,omitempty"`
		Tuples             int    `json:"tuples"`
		LatticeNodes       int    `json:"latticeNodes"`
		PartitionsComputed int    `json:"partitionsComputed"`
		ParallelProducts   int    `json:"parallelProducts,omitempty"`
		CacheHits          int    `json:"partitionCacheHits"`
		CacheMisses        int    `json:"partitionCacheMisses"`
		CacheEvictions     int    `json:"partitionCacheEvictions,omitempty"`
		CachePeakBytes     int64  `json:"partitionCachePeakBytes"`
		TargetsCreated     int    `json:"targetsCreated"`
		TargetsPropagated  int    `json:"targetsPropagated"`
		TargetsDropped     int    `json:"targetsDropped"`
		IntraTime          string `json:"intraTime"`
		InterTime          string `json:"interTime"`
		WallTime           string `json:"wallTime"`
		Truncated          bool   `json:"truncated,omitempty"`
		TruncatedReason    string `json:"truncatedReason,omitempty"`
	} `json:"stats"`
}

func relStrings(rs []RelPath) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = string(r)
	}
	return out
}

// WriteJSON renders a discovery result as a stable JSON document, for
// machine consumption of the CLI output (discoverxfd -json).
func WriteJSON(w io.Writer, res *Result) error {
	var jr jsonResult
	jr.FDs = make([]jsonFD, 0, len(res.FDs))
	for i, fd := range res.FDs {
		j := jsonFD{
			Class: string(fd.Class),
			LHS:   relStrings(fd.LHS),
			RHS:   string(fd.RHS),
			Inter: fd.Inter,
		}
		if i < len(res.Redundancies) {
			j.RedundantValues = res.Redundancies[i].RedundantValues
			j.WitnessGroups = res.Redundancies[i].Groups
		}
		jr.FDs = append(jr.FDs, j)
	}
	jr.Keys = make([]jsonKey, 0, len(res.Keys))
	for _, k := range res.Keys {
		jr.Keys = append(jr.Keys, jsonKey{Class: string(k.Class), LHS: relStrings(k.LHS), Inter: k.Inter})
	}
	for _, fd := range res.ApproxFDs {
		jr.ApproxFDs = append(jr.ApproxFDs, jsonFD{
			Class:       string(fd.Class),
			LHS:         relStrings(fd.LHS),
			RHS:         string(fd.RHS),
			Approximate: true,
			G3Error:     fd.Error,
		})
	}
	jr.Stats.Relations = res.Stats.Relations
	jr.Stats.RelationsReused = res.Stats.RelationsReused
	jr.Stats.Tuples = res.Stats.Tuples
	jr.Stats.LatticeNodes = res.Stats.NodesVisited
	jr.Stats.PartitionsComputed = res.Stats.PartitionsComputed
	jr.Stats.ParallelProducts = res.Stats.ParallelProducts
	jr.Stats.CacheHits = res.Stats.PartitionCacheHits
	jr.Stats.CacheMisses = res.Stats.PartitionCacheMisses
	jr.Stats.CacheEvictions = res.Stats.PartitionCacheEvictions
	jr.Stats.CachePeakBytes = res.Stats.PartitionCachePeakBytes
	jr.Stats.TargetsCreated = res.Stats.TargetsCreated
	jr.Stats.TargetsPropagated = res.Stats.TargetsPropagated
	jr.Stats.TargetsDropped = res.Stats.TargetsDropped
	jr.Stats.IntraTime = res.Stats.IntraTime.String()
	jr.Stats.InterTime = res.Stats.InterTime.String()
	jr.Stats.WallTime = res.Stats.WallTime.String()
	jr.Stats.Truncated = res.Stats.Truncated
	jr.Stats.TruncatedReason = res.Stats.TruncatedReason

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jr)
}
