package discoverxfd

import (
	"io"
	"log/slog"

	"discoverxfd/internal/trace"
)

// NewJSONLTracer returns a Tracer writing one JSON object per event
// to w — the `discoverxfd -trace=<file>` format. The writer is not
// buffered or closed by the tracer; wrap files in a bufio.Writer and
// flush after the run. Write errors latch silently (a full disk never
// fails a discovery); inspect them via the concrete type's Err method
// if needed.
func NewJSONLTracer(w io.Writer) Tracer { return trace.NewJSONL(w) }

// NewProgressTracer returns a Tracer rendering events as log/slog
// records (nil logger means slog.Default): the `-v`/`-vv` live
// progress view. verbose false logs run/stage/relation spans and
// governor events only; verbose true adds throttled per-level and
// per-target progress.
func NewProgressTracer(l *slog.Logger, verbose bool) Tracer {
	return trace.NewProgress(l, verbose)
}

// CombineTracers fans every event out to all non-nil tracers; with
// zero live tracers it returns nil (tracing off). Use it to trace to
// a JSONL file and the progress log simultaneously.
func CombineTracers(ts ...Tracer) Tracer { return trace.Multi(ts...) }
