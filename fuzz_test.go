package discoverxfd_test

import (
	"testing"

	"discoverxfd"
)

// The fuzz targets guard the three text parsers a hostile input
// reaches first: the constraint notation (single FD, constraint file)
// and the nested-relational schema notation. Each asserts the parser
// never panics and that successful parses are canonical: rendering a
// parsed value and reparsing it reproduces the value exactly, so the
// printed notation is always machine-readable again. CI runs each
// target briefly (-fuzz smoke step); the seed corpus covers every
// syntactic form the grammars accept.

func FuzzParseFD(f *testing.F) {
	f.Add("{./ISBN} -> ./title w.r.t. C(/warehouse/state/store/book)")
	f.Add("{../contact/name, ./ISBN} -> ./price w.r.t. C(/warehouse/state/store/book)")
	f.Add("{} -> ./title w.r.t. C(/dblp/article)")
	f.Add("{.} -> ../name w.r.t. C(/mondial/country/city)")
	f.Add("{../../name} -> ./population w.r.t. C(/mondial/country/province/city)")
	f.Add("{./ISBN} KEY of C(/warehouse/state/store/book)")
	f.Add("x")
	f.Fuzz(func(t *testing.T, s string) {
		fd, err := discoverxfd.ParseFD(s)
		if err != nil {
			return
		}
		again, err := discoverxfd.ParseFD(fd.String())
		if err != nil {
			t.Fatalf("reparse of %q (from %q): %v", fd.String(), s, err)
		}
		if again.String() != fd.String() {
			t.Fatalf("round-trip not canonical for %q: %q vs %q", s, fd.String(), again.String())
		}
	})
}

func FuzzParseConstraints(f *testing.F) {
	f.Add("{./ISBN} -> ./title w.r.t. C(/warehouse/state/store/book)\n{./contact} KEY of C(/warehouse/state/store)")
	f.Add("# comment\n\n{./a} KEY of C(/r/x)\n")
	f.Add("{./a, ./b} -> ./c w.r.t. C(/r/x)")
	f.Add("not a constraint")
	f.Fuzz(func(t *testing.T, text string) {
		cs, err := discoverxfd.ParseConstraints(text)
		if err != nil {
			return
		}
		for _, c := range cs {
			again, err := discoverxfd.ParseConstraint(c.String())
			if err != nil {
				t.Fatalf("reparse of %q (from %q): %v", c.String(), text, err)
			}
			if again.String() != c.String() {
				t.Fatalf("round-trip not canonical in %q: %q vs %q", text, c.String(), again.String())
			}
		}
	})
}

func FuzzParseSchema(f *testing.F) {
	f.Add("warehouse: Rcd\n  state: SetOf Rcd\n    name: str\n")
	f.Add("dblp: Rcd\n  article: SetOf Rcd\n    key: str\n    author: SetOf str\n    year: int\n")
	f.Add("r: Rcd\n  x: float\n")
	f.Add("r: Rcd")
	f.Add(": :")
	f.Fuzz(func(t *testing.T, text string) {
		s, err := discoverxfd.ParseSchema(text)
		if err != nil {
			return
		}
		printed := s.String()
		again, err := discoverxfd.ParseSchema(printed)
		if err != nil {
			t.Fatalf("reparse of printed schema failed (from %q):\n%s\n%v", text, printed, err)
		}
		if again.String() != printed {
			t.Fatalf("schema print not canonical for %q:\n%s\nvs\n%s", text, printed, again.String())
		}
	})
}
