package discoverxfd_test

import (
	"strings"
	"testing"

	"discoverxfd"
)

// The fuzz targets guard the text parsers a hostile input reaches
// first: the constraint notation (single FD, constraint file), the
// nested-relational schema notation, and the JSON document front-end.
// Each asserts the parser never panics and that successful parses are
// canonical: rendering a parsed value and reparsing it reproduces the
// value exactly, so the printed notation is always machine-readable
// again. CI runs each target briefly (-fuzz smoke step); the seed
// corpus covers every syntactic form the grammars accept.

func FuzzParseFD(f *testing.F) {
	f.Add("{./ISBN} -> ./title w.r.t. C(/warehouse/state/store/book)")
	f.Add("{../contact/name, ./ISBN} -> ./price w.r.t. C(/warehouse/state/store/book)")
	f.Add("{} -> ./title w.r.t. C(/dblp/article)")
	f.Add("{.} -> ../name w.r.t. C(/mondial/country/city)")
	f.Add("{../../name} -> ./population w.r.t. C(/mondial/country/province/city)")
	f.Add("{./ISBN} KEY of C(/warehouse/state/store/book)")
	f.Add("x")
	f.Fuzz(func(t *testing.T, s string) {
		fd, err := discoverxfd.ParseFD(s)
		if err != nil {
			return
		}
		again, err := discoverxfd.ParseFD(fd.String())
		if err != nil {
			t.Fatalf("reparse of %q (from %q): %v", fd.String(), s, err)
		}
		if again.String() != fd.String() {
			t.Fatalf("round-trip not canonical for %q: %q vs %q", s, fd.String(), again.String())
		}
	})
}

func FuzzParseConstraints(f *testing.F) {
	f.Add("{./ISBN} -> ./title w.r.t. C(/warehouse/state/store/book)\n{./contact} KEY of C(/warehouse/state/store)")
	f.Add("# comment\n\n{./a} KEY of C(/r/x)\n")
	f.Add("{./a, ./b} -> ./c w.r.t. C(/r/x)")
	f.Add("not a constraint")
	f.Fuzz(func(t *testing.T, text string) {
		cs, err := discoverxfd.ParseConstraints(text)
		if err != nil {
			return
		}
		for _, c := range cs {
			again, err := discoverxfd.ParseConstraint(c.String())
			if err != nil {
				t.Fatalf("reparse of %q (from %q): %v", c.String(), text, err)
			}
			if again.String() != c.String() {
				t.Fatalf("round-trip not canonical in %q: %q vs %q", text, c.String(), again.String())
			}
		}
	})
}

// FuzzLoadJSON guards the JSON front-end: no input may panic or
// exhaust resources past the parse limits, and every accepted
// document must uphold the load-path invariants — its inferred schema
// accepts the tree it was inferred from, and that schema's text form
// is canonical (prints and reparses to itself), so a JSON-loaded
// document can flow through every downstream API that a schema
// gatekeeps.
func FuzzLoadJSON(f *testing.F) {
	f.Add(`{"warehouse": {"state": [{"name": "CA"}]}}`)
	f.Add(`{"a": 1, "b": 2}`)
	f.Add(`[{"x": 1}, {"x": 2}]`)
	f.Add(`{"r": {"xs": [1, {"a": 2}, "s"], "n": null, "o": {}, "e": []}}`)
	f.Add(`{"r": {"m": [[1, 2], [3]], "f": 1.5e10, "b": [true, false]}}`)
	f.Add(`{"r": {"@text": "mixed", "k": "v"}}`)
	f.Add(`{}`)
	f.Add(`{"document": {"item": 1}}`)
	f.Add(`not json`)
	f.Fuzz(func(t *testing.T, text string) {
		opts := &discoverxfd.Options{Limits: discoverxfd.Limits{MaxDepth: 64, MaxNodes: 4096}}
		doc, err := discoverxfd.LoadJSONContext(t.Context(), strings.NewReader(text), opts)
		if err != nil {
			return
		}
		s, err := discoverxfd.InferSchema(doc)
		if err != nil {
			t.Fatalf("accepted document but InferSchema failed for %q: %v", text, err)
		}
		if err := discoverxfd.Conform(doc, s); err != nil {
			t.Fatalf("inferred schema rejects its own tree for %q: %v\nschema:\n%s", text, err, s)
		}
		printed := s.String()
		again, err := discoverxfd.ParseSchema(printed)
		if err != nil {
			t.Fatalf("inferred schema does not reparse (from %q):\n%s\n%v", text, printed, err)
		}
		if again.String() != printed {
			t.Fatalf("inferred schema print not canonical for %q:\n%s\nvs\n%s", text, printed, again.String())
		}
	})
}

func FuzzParseSchema(f *testing.F) {
	f.Add("warehouse: Rcd\n  state: SetOf Rcd\n    name: str\n")
	f.Add("dblp: Rcd\n  article: SetOf Rcd\n    key: str\n    author: SetOf str\n    year: int\n")
	f.Add("r: Rcd\n  x: float\n")
	f.Add("r: Rcd")
	f.Add(": :")
	f.Fuzz(func(t *testing.T, text string) {
		s, err := discoverxfd.ParseSchema(text)
		if err != nil {
			return
		}
		printed := s.String()
		again, err := discoverxfd.ParseSchema(printed)
		if err != nil {
			t.Fatalf("reparse of printed schema failed (from %q):\n%s\n%v", text, printed, err)
		}
		if again.String() != printed {
			t.Fatalf("schema print not canonical for %q:\n%s\nvs\n%s", text, printed, again.String())
		}
	})
}
