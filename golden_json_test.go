package discoverxfd_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"discoverxfd"
	"discoverxfd/internal/source/jsondoc"
	"discoverxfd/internal/xmlgen"
)

// jsonTwinPath is the committed JSON spelling of the warehouse golden
// corpus; -update regenerates it from the XML generator through the
// jsondoc serializer.
const jsonTwinPath = "testdata/json/warehouse.json"

// TestJSONTwinGolden is the source-layer differential harness: the
// committed JSON twin of the warehouse corpus, loaded through the
// JSON front-end and discovered through the unchanged engine, must
// emit byte-identical Result JSON to the committed XML-derived golden
// fixture. Result JSON names no document or node keys, so the two
// spellings can and must collide exactly — any divergence means the
// JSON mapping changed the data the engine sees.
func TestJSONTwinGolden(t *testing.T) {
	ds := xmlgen.Warehouse(xmlgen.DefaultWarehouse())

	// The twin is itself pinned: serializing the generated tree must
	// reproduce the committed bytes, so silent drift in the serializer
	// (or generator) cannot masquerade as source parity.
	var twin bytes.Buffer
	if err := jsondoc.Write(&twin, ds.Tree, ds.Schema); err != nil {
		t.Fatal(err)
	}
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(jsonTwinPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(jsonTwinPath, twin.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	committed, err := os.ReadFile(jsonTwinPath)
	if err != nil {
		t.Fatalf("missing JSON twin fixture (run with -update): %v", err)
	}
	if !bytes.Equal(committed, twin.Bytes()) {
		t.Fatalf("serialized twin drifted from committed %s\n%s", jsonTwinPath, diffHint(committed, twin.Bytes()))
	}

	// The JSON front-end must reconstruct the XML-generated tree
	// exactly — labels, values, document order.
	doc, err := discoverxfd.LoadJSON(bytes.NewReader(committed))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := doc.String(), ds.Tree.String(); got != want {
		t.Fatalf("JSON twin parses to a different tree than the XML original")
	}
	if err := discoverxfd.Conform(doc, ds.Schema); err != nil {
		t.Fatalf("JSON twin does not conform to the warehouse schema: %v", err)
	}

	// The acceptance criterion: discovery over the JSON twin is
	// byte-identical to the committed XML golden.
	res, err := discoverxfd.Discover(doc, ds.Schema, nil)
	if err != nil {
		t.Fatal(err)
	}
	zeroTimes(res)
	var got bytes.Buffer
	if err := discoverxfd.WriteJSON(&got, res); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "golden", "warehouse.json"))
	if err != nil {
		t.Fatalf("missing XML golden fixture (run with -update): %v", err)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Errorf("JSON twin Result JSON differs from the XML golden\n%s", diffHint(want, got.Bytes()))
	}

	// With no declared schema both spellings must also infer the same
	// schema (the JSON set hints recover what XML repetition implies
	// on this corpus), keeping the schemaless quickstart path on
	// parity too.
	jsonInferred, err := discoverxfd.InferSchema(doc)
	if err != nil {
		t.Fatal(err)
	}
	xmlInferred, err := discoverxfd.InferSchema(ds.Tree)
	if err != nil {
		t.Fatal(err)
	}
	if jsonInferred.String() != xmlInferred.String() {
		t.Errorf("inferred schemas diverge\njson:\n%s\nxml:\n%s", jsonInferred, xmlInferred)
	}
}
