package discoverxfd_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"discoverxfd"
)

func TestWriteJSON(t *testing.T) {
	doc, err := discoverxfd.ParseDocument(libraryXML)
	if err != nil {
		t.Fatal(err)
	}
	res, err := discoverxfd.Discover(doc, nil, &discoverxfd.Options{ApproxError: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := discoverxfd.WriteJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		FDs []struct {
			Class           string   `json:"class"`
			LHS             []string `json:"lhs"`
			RHS             string   `json:"rhs"`
			RedundantValues int      `json:"redundantValues"`
		} `json:"fds"`
		Keys []struct {
			Class string   `json:"class"`
			LHS   []string `json:"lhs"`
		} `json:"keys"`
		Stats struct {
			Relations       int    `json:"relations"`
			Tuples          int    `json:"tuples"`
			IntraTime       string `json:"intraTime"`
			WallTime        string `json:"wallTime"`
			Truncated       bool   `json:"truncated"`
			TruncatedReason string `json:"truncatedReason"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(decoded.FDs) != len(res.FDs) || len(decoded.Keys) != len(res.Keys) {
		t.Fatalf("JSON cardinalities differ: %d/%d FDs, %d/%d keys",
			len(decoded.FDs), len(res.FDs), len(decoded.Keys), len(res.Keys))
	}
	if decoded.Stats.Relations != res.Stats.Relations || decoded.Stats.Tuples != res.Stats.Tuples {
		t.Fatalf("stats mismatch: %+v vs %+v", decoded.Stats, res.Stats)
	}
	if d, err := time.ParseDuration(decoded.Stats.WallTime); err != nil || d <= 0 {
		t.Errorf("wallTime = %q, want a positive duration (err=%v)", decoded.Stats.WallTime, err)
	}
	if _, err := time.ParseDuration(decoded.Stats.IntraTime); err != nil {
		t.Errorf("intraTime = %q does not parse: %v", decoded.Stats.IntraTime, err)
	}
	if decoded.Stats.Truncated || decoded.Stats.TruncatedReason != "" {
		t.Errorf("untruncated run carries truncation fields: %+v", decoded.Stats)
	}
	// The isbn->title FD carries its witness count.
	found := false
	for _, fd := range decoded.FDs {
		if fd.RHS == "./title" && len(fd.LHS) == 1 && fd.LHS[0] == "./isbn" {
			found = true
			if fd.RedundantValues != 1 {
				t.Errorf("isbn->title redundantValues = %d, want 1", fd.RedundantValues)
			}
		}
	}
	if !found {
		t.Fatalf("isbn->title missing from JSON:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "approxFDs") && len(res.ApproxFDs) > 0 {
		t.Fatalf("approximate FDs missing from JSON")
	}
}

// TestWriteJSONTruncatedReason pins the truncation fields' round
// trip: a tuple-capped run must carry truncated=true and its reason
// through the JSON encoding.
func TestWriteJSONTruncatedReason(t *testing.T) {
	doc, err := discoverxfd.ParseDocument(libraryXML)
	if err != nil {
		t.Fatal(err)
	}
	res, err := discoverxfd.Discover(doc, nil, &discoverxfd.Options{
		Limits: discoverxfd.Limits{MaxTuples: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Truncated || res.Stats.TruncatedReason == "" {
		t.Fatalf("tuple-capped run not truncated: %+v", res.Stats)
	}
	var buf bytes.Buffer
	if err := discoverxfd.WriteJSON(&buf, res); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Stats struct {
			Truncated       bool   `json:"truncated"`
			TruncatedReason string `json:"truncatedReason"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if !decoded.Stats.Truncated || decoded.Stats.TruncatedReason != res.Stats.TruncatedReason {
		t.Fatalf("truncation fields lost in JSON: %+v vs %+v", decoded.Stats, res.Stats)
	}
}

func TestOptionsApproxThroughFacade(t *testing.T) {
	// Two dirty rows out of many: isbn->publisher approximately.
	xml := `<lib>
	  <b><isbn>1</isbn><pub>X</pub></b><b><isbn>1</isbn><pub>X</pub></b>
	  <b><isbn>1</isbn><pub>X</pub></b><b><isbn>1</isbn><pub>X</pub></b>
	  <b><isbn>1</isbn><pub>X</pub></b><b><isbn>1</isbn><pub>X</pub></b>
	  <b><isbn>1</isbn><pub>X</pub></b><b><isbn>1</isbn><pub>X</pub></b>
	  <b><isbn>1</isbn><pub>typo</pub></b>
	  <b><isbn>2</isbn><pub>Y</pub></b>
	</lib>`
	doc, err := discoverxfd.ParseDocument(xml)
	if err != nil {
		t.Fatal(err)
	}
	res, err := discoverxfd.Discover(doc, nil, &discoverxfd.Options{ApproxError: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, fd := range res.ApproxFDs {
		if string(fd.RHS) == "./pub" && len(fd.LHS) == 1 && string(fd.LHS[0]) == "./isbn" {
			found = true
			if fd.Error <= 0 || fd.Error > 0.15 {
				t.Errorf("g3 error out of range: %v", fd.Error)
			}
		}
	}
	if !found {
		t.Fatalf("isbn->pub not found approximately: %v", res.ApproxFDs)
	}
}
