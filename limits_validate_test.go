package discoverxfd_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"discoverxfd"
)

// TestLimitsValidate pins the usage-error contract: every negative
// field fails with ErrBadLimits naming the field, and the zero value
// (all budgets off) is always valid.
func TestLimitsValidate(t *testing.T) {
	if err := (discoverxfd.Limits{}).Validate(); err != nil {
		t.Fatalf("zero Limits must validate, got %v", err)
	}
	if err := (discoverxfd.Limits{
		MaxDepth: 100, MaxNodes: 1000, MaxTuples: 50,
		MaxLatticeLevel: 3, Deadline: time.Second, MaxPartitionBytes: 1 << 20,
	}).Validate(); err != nil {
		t.Fatalf("positive Limits must validate, got %v", err)
	}
	cases := []struct {
		field string
		l     discoverxfd.Limits
	}{
		{"MaxDepth", discoverxfd.Limits{MaxDepth: -1}},
		{"MaxNodes", discoverxfd.Limits{MaxNodes: -1}},
		{"MaxTuples", discoverxfd.Limits{MaxTuples: -7}},
		{"MaxLatticeLevel", discoverxfd.Limits{MaxLatticeLevel: -2}},
		{"Deadline", discoverxfd.Limits{Deadline: -time.Second}},
		{"MaxPartitionBytes", discoverxfd.Limits{MaxPartitionBytes: -1}},
	}
	for _, c := range cases {
		err := c.l.Validate()
		if !errors.Is(err, discoverxfd.ErrBadLimits) {
			t.Errorf("%s: err = %v, want ErrBadLimits", c.field, err)
			continue
		}
		if !strings.Contains(err.Error(), c.field) {
			t.Errorf("%s: error %q does not name the offending field", c.field, err)
		}
	}
}

// TestBadLimitsFailFastAtEntryPoints checks that a nonsensical Limits
// value fails fast with ErrBadLimits at every Engine entry point,
// before any work (no silent reinterpretation as "unlimited").
func TestBadLimitsFailFastAtEntryPoints(t *testing.T) {
	xml := bigLibraryXML(2)
	doc, err := discoverxfd.ParseDocument(xml)
	if err != nil {
		t.Fatal(err)
	}
	s := librarySchema(t, xml)
	opts := &discoverxfd.Options{Limits: discoverxfd.Limits{MaxTuples: -1}}
	ctx := context.Background()

	if _, err := discoverxfd.DiscoverContext(ctx, doc, s, opts); !errors.Is(err, discoverxfd.ErrBadLimits) {
		t.Errorf("DiscoverContext err = %v, want ErrBadLimits", err)
	}
	if _, err := discoverxfd.DiscoverStreamContext(ctx, strings.NewReader(xml), s, opts); !errors.Is(err, discoverxfd.ErrBadLimits) {
		t.Errorf("DiscoverStreamContext err = %v, want ErrBadLimits", err)
	}
	if _, err := discoverxfd.BuildHierarchyContext(ctx, doc, s, opts); !errors.Is(err, discoverxfd.ErrBadLimits) {
		t.Errorf("BuildHierarchyContext err = %v, want ErrBadLimits", err)
	}
	if _, err := discoverxfd.LoadDocumentContext(ctx, strings.NewReader(xml), opts); !errors.Is(err, discoverxfd.ErrBadLimits) {
		t.Errorf("LoadDocumentContext err = %v, want ErrBadLimits", err)
	}
	h, err := discoverxfd.BuildHierarchy(doc, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := discoverxfd.DiscoverHierarchyContext(ctx, h, opts); !errors.Is(err, discoverxfd.ErrBadLimits) {
		t.Errorf("DiscoverHierarchyContext err = %v, want ErrBadLimits", err)
	}
}

// TestContextDeadlineComposesWithLimits is the regression test for
// deadline composition: the run honors the earlier of the context
// deadline and Limits.Deadline, and a fired *deadline* — whichever
// side it came from — degrades gracefully into a partial Result,
// while explicit cancellation stays an error.
func TestContextDeadlineComposesWithLimits(t *testing.T) {
	xml := bigLibraryXML(40)
	doc, err := discoverxfd.ParseDocument(xml)
	if err != nil {
		t.Fatal(err)
	}
	s := librarySchema(t, xml)
	h, err := discoverxfd.BuildHierarchy(doc, s, nil)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("ctx deadline earlier than generous Limits.Deadline", func(t *testing.T) {
		// The context deadline has already passed; Limits.Deadline is an
		// hour out. The composed budget is the context's, so the run
		// must truncate gracefully — not die with DeadlineExceeded.
		ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
		defer cancel()
		res, err := discoverxfd.DiscoverHierarchyContext(ctx, h, &discoverxfd.Options{
			Limits: discoverxfd.Limits{Deadline: time.Hour},
		})
		if err != nil {
			t.Fatalf("expired ctx deadline must degrade gracefully, got error: %v", err)
		}
		if !res.Stats.Truncated || !strings.Contains(res.Stats.TruncatedReason, "deadline") {
			t.Fatalf("Truncated=%v reason=%q, want a deadline truncation", res.Stats.Truncated, res.Stats.TruncatedReason)
		}
	})

	t.Run("ctx deadline bounds the whole document path", func(t *testing.T) {
		ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
		defer cancel()
		res, err := discoverxfd.DiscoverContext(ctx, doc, s, &discoverxfd.Options{
			Limits: discoverxfd.Limits{Deadline: time.Hour},
		})
		if err != nil {
			t.Fatalf("expired ctx deadline must degrade gracefully, got error: %v", err)
		}
		if !res.Stats.Truncated {
			t.Fatal("expired ctx deadline did not mark the result truncated")
		}
	})

	t.Run("Limits.Deadline earlier than generous ctx deadline", func(t *testing.T) {
		ctx, cancel := context.WithTimeout(context.Background(), time.Hour)
		defer cancel()
		res, err := discoverxfd.DiscoverHierarchyContext(ctx, h, &discoverxfd.Options{
			Limits: discoverxfd.Limits{Deadline: time.Nanosecond},
		})
		if err != nil {
			t.Fatalf("Limits.Deadline must degrade gracefully, got error: %v", err)
		}
		if !res.Stats.Truncated || !strings.Contains(res.Stats.TruncatedReason, "deadline") {
			t.Fatalf("Truncated=%v reason=%q, want a deadline truncation", res.Stats.Truncated, res.Stats.TruncatedReason)
		}
	})

	t.Run("explicit cancellation stays an error", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		res, err := discoverxfd.DiscoverHierarchyContext(ctx, h, &discoverxfd.Options{
			Limits: discoverxfd.Limits{Deadline: time.Hour},
		})
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if res != nil {
			t.Fatal("cancelled run returned a Result")
		}
	})
}
