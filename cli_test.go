package discoverxfd_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildCmd compiles one of the repo's commands into a shared temp dir
// (cleaned up by TestMain) and returns the binary path.
var (
	builtCmds = map[string]string{}
	cliBinDir string
)

func TestMain(m *testing.M) {
	code := m.Run()
	if cliBinDir != "" {
		os.RemoveAll(cliBinDir)
	}
	os.Exit(code)
}

func buildCmd(t *testing.T, name string) string {
	t.Helper()
	if p, ok := builtCmds[name]; ok {
		return p
	}
	if cliBinDir == "" {
		dir, err := os.MkdirTemp("", "discoverxfd-cli")
		if err != nil {
			t.Fatal(err)
		}
		cliBinDir = dir
	}
	bin := filepath.Join(cliBinDir, name)
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	cmd.Dir = "."
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	builtCmds[name] = bin
	return bin
}

func run(t *testing.T, bin string, stdin string, args ...string) (string, int) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	if stdin != "" {
		cmd.Stdin = strings.NewReader(stdin)
	}
	out, err := cmd.CombinedOutput()
	code := 0
	if exitErr, ok := err.(*exec.ExitError); ok {
		code = exitErr.ExitCode()
	} else if err != nil {
		t.Fatalf("running %s: %v\n%s", bin, err, out)
	}
	return string(out), code
}

func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	gen := buildCmd(t, "xfdgen")
	disc := buildCmd(t, "discoverxfd")
	check := buildCmd(t, "xfdcheck")

	// Generate a warehouse document.
	xml, code := run(t, gen, "", "-dataset", "warehouse")
	if code != 0 || !strings.Contains(xml, "<warehouse>") {
		t.Fatalf("xfdgen failed (code %d):\n%.300s", code, xml)
	}
	dir := t.TempDir()
	docPath := filepath.Join(dir, "wh.xml")
	if err := os.WriteFile(docPath, []byte(xml), 0o644); err != nil {
		t.Fatal(err)
	}

	// Discover on it.
	report, code := run(t, disc, "", docPath)
	if code != 0 {
		t.Fatalf("discoverxfd failed (code %d):\n%s", code, report)
	}
	for _, want := range []string{
		"Redundancy-indicating XML FDs",
		"{./ISBN} -> ./title",
		"XML Keys",
	} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%.800s", want, report)
		}
	}

	// JSON mode emits valid-looking JSON.
	jsonOut, code := run(t, disc, "", "-json", docPath)
	if code != 0 || !strings.HasPrefix(strings.TrimSpace(jsonOut), "{") {
		t.Fatalf("discoverxfd -json failed (code %d):\n%.300s", code, jsonOut)
	}

	// Schema printing round-trips through -schema.
	schemaOut, code := run(t, disc, "", "-printschema", docPath)
	if code != 0 || !strings.Contains(schemaOut, "book: SetOf Rcd") {
		t.Fatalf("-printschema failed (code %d):\n%s", code, schemaOut)
	}
	schemaPath := filepath.Join(dir, "wh.schema")
	if err := os.WriteFile(schemaPath, []byte(schemaOut), 0o644); err != nil {
		t.Fatal(err)
	}
	report2, code := run(t, disc, "", "-schema", schemaPath, docPath)
	if code != 0 || !strings.Contains(report2, "{./ISBN} -> ./title") {
		t.Fatalf("-schema run failed (code %d):\n%.500s", code, report2)
	}

	// xfdcheck passes on holding constraints, fails on a violated one.
	rulesPath := filepath.Join(dir, "rules.txt")
	holding := "{./ISBN} -> ./title w.r.t. C(/warehouse/state/store/book)\n"
	if err := os.WriteFile(rulesPath, []byte(holding), 0o644); err != nil {
		t.Fatal(err)
	}
	out, code := run(t, check, "", "-constraints", rulesPath, docPath)
	if code != 0 {
		t.Fatalf("xfdcheck should pass (code %d):\n%s", code, out)
	}
	violated := holding + "{./ISBN} -> ./price w.r.t. C(/warehouse/state/store/book)\n"
	if err := os.WriteFile(rulesPath, []byte(violated), 0o644); err != nil {
		t.Fatal(err)
	}
	out, code = run(t, check, "", "-constraints", rulesPath, docPath)
	if code != 1 || !strings.Contains(out, "VIOLATED") {
		t.Fatalf("xfdcheck should fail with code 1 (got %d):\n%s", code, out)
	}
	// A generous g3 budget tolerates the violation.
	out, code = run(t, check, "", "-constraints", rulesPath, "-approx", "0.9", docPath)
	if code != 0 || !strings.Contains(out, "NEAR") {
		t.Fatalf("xfdcheck -approx should tolerate (got %d):\n%s", code, out)
	}
	// The streamed CLI path produces the same FD lines.
	disc2, _ := run(t, disc, "", "-stream", "-schema", schemaPath, docPath)
	if !strings.Contains(disc2, "{./ISBN} -> ./title") {
		t.Fatalf("streamed CLI output missing FD:\n%.500s", disc2)
	}
}

// TestCLIJSONFormat exercises the JSON document path end to end: a
// .json spelling of the committed warehouse twin discovers the same
// FDs by extension, by content sniffing, and under a forced -format,
// while format misuse is classified as usage (exit 2).
func TestCLIJSONFormat(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	disc := buildCmd(t, "discoverxfd")
	twin, err := os.ReadFile(jsonTwinPath)
	if err != nil {
		t.Fatalf("missing JSON twin fixture: %v", err)
	}
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "wh.json")
	if err := os.WriteFile(jsonPath, twin, 0o644); err != nil {
		t.Fatal(err)
	}

	// Format detected from the extension.
	report, code := run(t, disc, "", jsonPath)
	if code != 0 || !strings.Contains(report, "{./ISBN} -> ./title") {
		t.Fatalf("json by extension: code %d\n%.500s", code, report)
	}
	// Format sniffed from content when the extension says nothing.
	extless := filepath.Join(dir, "wh.doc")
	if err := os.WriteFile(extless, twin, 0o644); err != nil {
		t.Fatal(err)
	}
	report2, code := run(t, disc, "", extless)
	if code != 0 || !strings.Contains(report2, "{./ISBN} -> ./title") {
		t.Fatalf("json by sniffing: code %d\n%.500s", code, report2)
	}
	// Forced format overrides the extension.
	report3, code := run(t, disc, "", "-format", "json", extless)
	if code != 0 || !strings.Contains(report3, "{./ISBN} -> ./title") {
		t.Fatalf("-format json: code %d\n%.500s", code, report3)
	}
	// The inferred schema prints the same set structure as the XML path.
	schemaOut, code := run(t, disc, "", "-printschema", jsonPath)
	if code != 0 || !strings.Contains(schemaOut, "book: SetOf Rcd") {
		t.Fatalf("-printschema on json: code %d\n%s", code, schemaOut)
	}

	// Unrecognized content with no telling extension is a usage error.
	plain := filepath.Join(dir, "notes.txt")
	if err := os.WriteFile(plain, []byte("plain text, neither format"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, code := run(t, disc, "", plain)
	if code != 2 || !strings.Contains(out, "unknown document format") {
		t.Fatalf("unknown format should exit 2: code %d\n%s", code, out)
	}
	// So is an unknown -format value, and -stream with JSON.
	out, code = run(t, disc, "", "-format", "yaml", jsonPath)
	if code != 2 || !strings.Contains(out, "-format") {
		t.Fatalf("-format yaml should exit 2: code %d\n%s", code, out)
	}
	out, code = run(t, disc, "", "-stream", "-format", "json", "-schema", "irrelevant", jsonPath)
	if code != 2 || !strings.Contains(out, "-stream") {
		t.Fatalf("-stream -format json should exit 2: code %d\n%s", code, out)
	}
	// Forcing xml onto a JSON document is a runtime parse error.
	_, code = run(t, disc, "", "-format", "xml", jsonPath)
	if code != 1 {
		t.Fatalf("-format xml on json input should exit 1: code %d", code)
	}
}

func TestCLIErrors(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	disc := buildCmd(t, "discoverxfd")
	// Missing file.
	out, code := run(t, disc, "", "/nonexistent.xml")
	if code == 0 {
		t.Fatalf("missing file should fail:\n%s", out)
	}
	// No args prints usage and exits 2.
	out, code = run(t, disc, "")
	if code != 2 || !strings.Contains(out, "usage:") {
		t.Fatalf("no-arg run: code %d\n%s", code, out)
	}
	// -stream without -schema is a usage error (exit 2), diagnosed
	// before the document is touched.
	out, code = run(t, disc, "", "-stream", "/nonexistent.xml")
	if code != 2 || !strings.Contains(out, "-schema") {
		t.Fatalf("-stream without -schema: code %d\n%s", code, out)
	}
	// Malformed XML is a runtime error: exit 1 with a diagnostic.
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.xml")
	if err := os.WriteFile(bad, []byte("<doc><unclosed></doc>"), 0o644); err != nil {
		t.Fatal(err)
	}
	out, code = run(t, disc, "", bad)
	if code != 1 || !strings.Contains(out, "discoverxfd:") {
		t.Fatalf("malformed XML: code %d\n%s", code, out)
	}
	// A parse limit rejects hostile input with exit 1.
	deep := filepath.Join(dir, "deep.xml")
	if err := os.WriteFile(deep, []byte(strings.Repeat("<a>", 99)+strings.Repeat("</a>", 99)), 0o644); err != nil {
		t.Fatal(err)
	}
	out, code = run(t, disc, "", "-maxdepth", "10", deep)
	if code != 1 || !strings.Contains(out, "depth") {
		t.Fatalf("-maxdepth: code %d\n%s", code, out)
	}
	out, code = run(t, disc, "", "-maxnodes", "5", deep)
	if code != 1 || !strings.Contains(out, "node count") {
		t.Fatalf("-maxnodes: code %d\n%s", code, out)
	}
}

// TestCLIResourceFlags exercises the graceful-degradation flags: a
// tuple budget or timeout yields a partial report with exit 0.
func TestCLIResourceFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	gen := buildCmd(t, "xfdgen")
	disc := buildCmd(t, "discoverxfd")
	xml, code := run(t, gen, "", "-dataset", "warehouse")
	if code != 0 {
		t.Fatalf("xfdgen failed (code %d)", code)
	}
	docPath := filepath.Join(t.TempDir(), "wh.xml")
	if err := os.WriteFile(docPath, []byte(xml), 0o644); err != nil {
		t.Fatal(err)
	}
	out, code := run(t, disc, "", "-maxtuples", "20", docPath)
	if code != 0 || !strings.Contains(out, "PARTIAL RESULT") {
		t.Fatalf("-maxtuples run: code %d\n%.500s", code, out)
	}
	out, code = run(t, disc, "", "-timeout", "1ns", docPath)
	if code != 0 || !strings.Contains(out, "PARTIAL RESULT") {
		t.Fatalf("-timeout run: code %d\n%.500s", code, out)
	}
	out, code = run(t, disc, "", "-json", "-maxtuples", "20", docPath)
	if code != 0 || !strings.Contains(out, `"truncated": true`) {
		t.Fatalf("-json -maxtuples run: code %d\n%.500s", code, out)
	}
}

func TestCLIBenchQuickSubset(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	bench := buildCmd(t, "xfdbench")
	out, code := run(t, bench, "", "-quick", "e1")
	if code != 0 || !strings.Contains(out, "== E1") {
		t.Fatalf("xfdbench -quick e1 failed (code %d):\n%.400s", code, out)
	}
	out, code = run(t, bench, "", "-list")
	if code != 0 || !strings.Contains(out, "e9") {
		t.Fatalf("xfdbench -list failed (code %d):\n%s", code, out)
	}
	out, code = run(t, bench, "", "nope")
	if code != 2 {
		t.Fatalf("unknown experiment should exit 2 (got %d):\n%s", code, out)
	}
}
